"""The CSV-records workload pack: golden oracles ≡ spanner output."""

from repro.engine import Engine, available_backends
from repro.va import regex_to_va, trim
from repro.workloads import TEXT_ALPHABET, packs
from repro.workloads.packs import (
    field_formula,
    generate_csv,
    generate_records,
    golden_interior_fields,
    golden_record,
    golden_records,
    record_formula,
)


def _extract(mapping, text):
    return {
        str(var).lstrip("?"): text[span.begin - 1 : span.end - 1]
        for var, span in mapping.items()
    }


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert generate_csv(30, seed=7) == generate_csv(30, seed=7)
        assert generate_csv(30, seed=7) != generate_csv(30, seed=8)
        assert generate_csv(30, seed=7) != generate_csv(30, seed=7, noise_rate=0.5)

    def test_lines_stay_inside_the_text_alphabet(self):
        for line in generate_records(50, seed=2, noise_rate=0.3):
            assert all(ch in TEXT_ALPHABET for ch in line)
            assert "\n" not in line

    def test_record_ids_ascend(self):
        ids = [
            int(line.split(",", 1)[0])
            for line in generate_records(40, seed=3)
        ]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)

    def test_noise_rate_extremes(self):
        notes = generate_records(20, seed=0, noise_rate=1.0)
        assert all(golden_record(line) is None for line in notes)
        clean = generate_records(20, seed=0, noise_rate=0.0)
        assert all(golden_record(line) is not None for line in clean)

    def test_package_reexports(self):
        assert packs.generate_csv is generate_csv


class TestGoldenOracles:
    def test_every_generated_record_parses(self):
        for line in generate_records(40, seed=3):
            fields = golden_record(line)
            assert fields is not None
            assert line == "{id},{email},{city},{amount}".format(**fields)

    def test_malformed_lines_are_rejected(self):
        assert golden_record("") is None
        assert golden_record("id,email,city,amount") is None  # the header
        assert golden_record("12,a@b.com,london") is None  # three fields
        assert golden_record("12,a@b.com,london,3.5") is None  # one cent digit
        assert golden_record("12,ab.com,london,3.50") is None  # no @
        assert golden_record("x2,a@b.com,london,3.50") is None  # non-digit id
        assert golden_record("12,a@b.com,London,3.50") is None  # uppercase city

    def test_golden_records_skip_header_and_unterminated_tail(self):
        body = generate_csv(10, seed=4)
        assert len(golden_records(body)) == 10
        # Chop the final newline: the last record loses its right anchor.
        assert len(golden_records(body[:-1])) == 9
        # The header only parses as a record when newline-delimited — and
        # then still fails the field validators.
        assert golden_records("id,email,city,amount\n" + body) == golden_records(body)

    def test_interior_fields_of_a_record_are_email_and_city(self):
        (line,) = generate_records(1, seed=5)
        fields = golden_record(line)
        assert golden_interior_fields(line + "\n") == [
            fields["email"],
            fields["city"],
        ]


class TestEngineEquivalence:
    def test_record_formula_matches_golden_on_every_backend(self):
        va = trim(regex_to_va(record_formula()))
        text = generate_csv(40, seed=6, noise_rate=0.2)
        want = golden_records(text)
        assert want  # the seed produces well-formed records
        for backend in available_backends():
            mappings = Engine(backend=backend).evaluate(va, text)
            got = sorted(
                (min(span.begin for _var, span in m.items()), _extract(m, text))
                for m in mappings
            )
            assert [fields for _pos, fields in got] == want, backend

    def test_field_formula_matches_golden_on_every_backend(self):
        va = trim(regex_to_va(field_formula()))
        text = generate_csv(25, seed=8, noise_rate=0.3)
        want = golden_interior_fields(text)
        assert want
        for backend in available_backends():
            mappings = Engine(backend=backend).evaluate(va, text)
            got = sorted(
                (span.begin, text[span.begin - 1 : span.end - 1])
                for m in mappings
                for _var, span in m.items()
            )
            assert [field for _pos, field in got] == want, backend

    def test_all_noise_still_yields_no_records(self):
        va = trim(regex_to_va(record_formula()))
        text = generate_csv(30, seed=9, noise_rate=1.0)
        assert golden_records(text) == []
        assert list(Engine().evaluate(va, text)) == []

    def test_tail_session_streams_the_golden_records(self):
        va = trim(regex_to_va(record_formula()))
        session = Engine().tail(va)
        text = ""
        emitted = []
        for batch in range(4):
            chunk_lines = generate_records(8, seed=batch, noise_rate=0.25)
            chunk = "".join(line + "\n" for line in chunk_lines)
            if not text:
                chunk = "id,email,city,amount\n" + chunk
            text += chunk
            emitted.extend(session.reevaluate(chunk))
        got = sorted(
            (min(span.begin for _var, span in m.items()), _extract(m, text))
            for m in emitted
        )
        assert [fields for _pos, fields in got] == golden_records(text)
