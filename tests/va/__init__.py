"""Test package."""
