"""Run semantics and the naive baseline evaluator (§2.3, Example 2.3)."""

from repro.core import Mapping, Span
from repro.regex import evaluate as regex_evaluate, parse
from repro.va import (
    VA,
    accepts_boolean,
    close_op,
    count_runs_explored,
    evaluate_naive,
    open_op,
)


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


def example_23_va() -> VA:
    """The sequential VA of Example 2.3 over Σ = {a, b}."""
    transitions = []
    for letter in "ab":
        transitions.append((0, letter, 0))
        transitions.append((1, letter, 1))
        transitions.append((2, letter, 2))
        transitions.append((0, letter, 2))  # the q0 → q2 letter transition
    transitions.append((0, open_op("x"), 1))
    transitions.append((1, close_op("x"), 2))
    return VA(0, (2,), transitions)


class TestExample23:
    def test_equivalent_to_regex_formula(self):
        # ⟦A⟧ = ⟦(Σ* x{Σ*} Σ*) ∨ Σ+⟧ (Example 2.3).
        alpha = parse("([ab]*x{[ab]*}[ab]*)|[ab]+")
        va = example_23_va()
        for doc in ("", "a", "ab", "ba", "aab"):
            assert evaluate_naive(va, doc) == regex_evaluate(alpha, doc), doc

    def test_empty_document_still_produces_x(self):
        # On ε, only the x-branch can accept (Σ+ needs a letter).
        assert evaluate_naive(example_23_va(), "") == {m(x=(1, 1))}


class TestValidity:
    def test_unclosed_variable_rejected(self):
        va = VA(0, (1,), [(0, open_op("x"), 1), (1, "a", 1)])
        assert evaluate_naive(va, "a").is_empty

    def test_close_without_open_rejected(self):
        va = VA(0, (1,), [(0, close_op("x"), 1), (1, "a", 1)])
        assert evaluate_naive(va, "a").is_empty

    def test_double_open_pruned(self):
        va = VA(
            0,
            (3,),
            [
                (0, open_op("x"), 1),
                (1, open_op("x"), 1),
                (1, "a", 2),
                (2, close_op("x"), 3),
            ],
        )
        # The only valid run opens x once.
        assert evaluate_naive(va, "a") == {m(x=(1, 2))}

    def test_epsilon_cycle_terminates(self):
        va = VA(0, (1,), [(0, None, 0), (0, "a", 1)])
        assert evaluate_naive(va, "a") == {Mapping()}


class TestBaselineUtilities:
    def test_accepts_boolean(self):
        va = VA(0, (1,), [(0, "a", 1)])
        assert accepts_boolean(va, "a")
        assert not accepts_boolean(va, "b")

    def test_count_runs_explored_grows_with_document(self):
        va = example_23_va()
        small = count_runs_explored(va, "a")
        large = count_runs_explored(va, "aaaa")
        assert large > small > 0

    def test_accepting_state_with_continuation(self):
        # Accepting mid-run and continuing must both be observed.
        va = VA(0, (0, 1), [(0, "a", 1), (1, "a", 0)])
        assert accepts_boolean(va, "")
        assert accepts_boolean(va, "a")
        assert accepts_boolean(va, "aa")
