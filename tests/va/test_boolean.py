"""Boolean automata: determinisation, complement, static difference (E11
substrate)."""

import pytest

from repro.core import SpannerError
from repro.regex import parse
from repro.va import evaluate_naive, evaluate_va, regex_to_va, trim
from repro.va.boolean import (
    boolean_nfa,
    complement_dfa,
    determinize,
    dfa_to_va,
    static_boolean_difference,
)
from repro.workloads import nth_from_end_va


def compile_boolean(text: str):
    return trim(regex_to_va(parse(text)))


class TestNFA:
    def test_epsilon_elimination(self):
        va = compile_boolean("a*b")
        nfa = boolean_nfa(va)
        assert nfa.accepts("b") and nfa.accepts("aab")
        assert not nfa.accepts("a") and not nfa.accepts("ba")

    def test_variables_rejected(self):
        with pytest.raises(SpannerError):
            boolean_nfa(compile_boolean("x{a}"))

    def test_agrees_with_va_semantics(self):
        va = compile_boolean("(ab)*|a*")
        nfa = boolean_nfa(va)
        for doc in ("", "a", "ab", "abab", "aab", "ba"):
            assert nfa.accepts(doc) == (not evaluate_naive(va, doc).is_empty), doc


class TestDFA:
    def test_determinisation_preserves_language(self):
        va = compile_boolean("(a|b)*a")
        nfa = boolean_nfa(va, "ab")
        dfa = determinize(nfa)
        for doc in ("", "a", "b", "ba", "ab", "bba"):
            assert dfa.accepts(doc) == nfa.accepts(doc), doc

    def test_complement_flips_membership(self):
        dfa = determinize(boolean_nfa(compile_boolean("a*"), "ab"))
        comp = complement_dfa(dfa)
        assert dfa.accepts("aa") and not comp.accepts("aa")
        assert not dfa.accepts("ab") and comp.accepts("ab")

    def test_dfa_to_va_roundtrip(self):
        dfa = determinize(boolean_nfa(compile_boolean("a(a|b)*"), "ab"))
        va = dfa_to_va(dfa)
        for doc in ("", "a", "ab", "ba"):
            assert (not evaluate_naive(va, doc).is_empty) == dfa.accepts(doc), doc

    def test_exponential_blowup_on_nth_from_end(self):
        # Jirásková [17]: the complement of "n-th letter from the end is a"
        # needs 2^n deterministic states.
        sizes = {}
        for n in (2, 4, 6):
            dfa = determinize(boolean_nfa(trim(nth_from_end_va(n)), "ab"))
            sizes[n] = dfa.n_states
        assert sizes[4] >= 2 ** 4
        assert sizes[6] >= 2 ** 6
        assert sizes[6] / sizes[4] >= 3.5  # exponential growth signature


class TestStaticDifference:
    def test_static_difference_language(self):
        a1 = compile_boolean("(a|b)*")
        a2 = compile_boolean("(a|b)*a")  # ends in a
        compiled, _ = static_boolean_difference(a1, a2, "ab")
        for doc in ("", "a", "b", "ab", "ba"):
            expected = not doc.endswith("a")
            assert (not evaluate_va(trim(compiled), doc).is_empty) == expected, doc

    def test_reports_determinised_size(self):
        a1 = compile_boolean("(a|b)*")
        _, size = static_boolean_difference(a1, trim(nth_from_end_va(5)), "ab")
        assert size >= 2 ** 5

    def test_agrees_with_adhoc_difference(self):
        from repro.algebra import adhoc_difference

        a1 = compile_boolean("(a|b)*")
        a2 = trim(nth_from_end_va(2))
        static, _ = static_boolean_difference(a1, a2, "ab")
        for doc in ("ab", "ba", "bb", "abab"):
            adhoc = adhoc_difference(a1, a2, doc)
            assert evaluate_va(trim(static), doc) == evaluate_va(adhoc, doc), doc
