"""Semi-functionalisation (Lemma 3.6 / A.1, Examples 3.5 and 3.7)."""

import random

from repro.va import (
    evaluate_naive,
    evaluate_va,
    is_semi_functional_for,
    make_semi_functional,
    regex_to_va,
    split_for_variable,
    trim,
)
from repro.workloads import random_sequential_formula
from repro.regex import parse

from .test_runs import example_23_va


class TestExample35:
    def test_split_resolves_the_ambiguity(self):
        va = trim(example_23_va())
        assert not is_semi_functional_for(va, {"x"})
        split = split_for_variable(va, "x")
        assert is_semi_functional_for(split, {"x"})

    def test_split_grows_by_one_state(self):
        # Example 3.5/3.7: q2 is replaced by q2^u and q2^c.
        va = trim(example_23_va())
        split = split_for_variable(va, "x")
        assert split.n_states == va.n_states + 1

    def test_equivalence_preserved(self):
        va = trim(example_23_va())
        split = split_for_variable(va, "x")
        for doc in ("", "a", "ab", "ba", "aab"):
            assert evaluate_va(split, doc) == evaluate_naive(va, doc), doc

    def test_idempotent_when_already_semi_functional(self):
        va = trim(example_23_va())
        once = split_for_variable(va, "x")
        assert split_for_variable(once, "x") is once


class TestMakeSemiFunctional:
    def test_multiple_variables(self):
        formula = parse("(x{a}|ε)(y{b}|ε)[ab]*")
        va = trim(regex_to_va(formula))
        prepared = make_semi_functional(va, {"x", "y"})
        assert is_semi_functional_for(prepared, {"x", "y"})
        for doc in ("", "a", "b", "ab", "aab"):
            assert evaluate_va(prepared, doc) == evaluate_va(trim(va), doc), doc

    def test_randomized_equivalence(self):
        rng = random.Random(13)
        for _ in range(15):
            formula = random_sequential_formula(rng.randint(1, 3), rng, depth=3)
            va = trim(regex_to_va(formula))
            if not va.accepting:
                continue
            prepared = make_semi_functional(va, va.variables)
            assert is_semi_functional_for(prepared, va.variables)
            for _ in range(3):
                doc = "".join(rng.choice("ab") for _ in range(rng.randint(0, 4)))
                assert evaluate_va(prepared, doc) == evaluate_naive(va, doc), (
                    formula.to_text(),
                    doc,
                )

    def test_preserves_other_variables_semi_functionality(self):
        # Lemma A.1: splitting for x keeps semi-functionality for y.
        formula = parse("y{a}((x{a}|ε)[ab]*)")
        va = trim(regex_to_va(formula))
        prepared = make_semi_functional(va, {"x"})
        assert is_semi_functional_for(prepared, {"x", "y"})

    def test_unmentioned_variables_are_noops(self):
        va = trim(example_23_va())
        prepared = make_semi_functional(va, {"ghost"})
        assert evaluate_va(prepared, "a") == evaluate_naive(va, "a")
