"""Match structures, determinisation, operation order (Theorem 4.8's
machinery)."""

import pytest

from repro.core import NotSynchronizedError
from repro.va import (
    DeterminizedMatchStructure,
    FactorizedVA,
    MatchGraph,
    close_op,
    enumerate_mappings,
    never_used_variables,
    open_op,
    operation_order,
    regex_to_va,
    trim,
)
from repro.va.operations import ops_at_positions
from repro.workloads import synchronized_block_formula
from repro.regex import parse

from .test_runs import example_23_va


def _sync_va(n_vars: int = 2):
    return trim(regex_to_va(synchronized_block_formula(n_vars)))


class TestOperationOrder:
    def test_block_formula_order(self):
        order = operation_order(_sync_va(2))
        assert [str(op) for op in order] == ["x1⊢", "⊣x1", "x2⊢", "⊣x2"]

    def test_variable_free(self):
        va = trim(regex_to_va(parse("a*")))
        assert operation_order(va) == ()

    def test_unsynchronized_rejected(self):
        with pytest.raises(NotSynchronizedError):
            operation_order(trim(example_23_va()))


class TestDeterminizedMatchStructure:
    def test_accepts_iff_member(self):
        va = _sync_va(2)
        doc = "abcba"
        d2 = DeterminizedMatchStructure(va, doc)
        for mapping in enumerate_mappings(va, doc):
            opsets = [frozenset(b) for b in ops_at_positions(mapping, len(doc))]
            assert d2.accepts(opsets), mapping

    def test_rejects_non_member(self):
        va = _sync_va(2)
        doc = "abcba"
        d2 = DeterminizedMatchStructure(va, doc)
        # x1 covering the 'c' separator is impossible.
        bad = [frozenset() for _ in range(len(doc) + 1)]
        bad[0] = frozenset({open_op("x1")})
        bad[4] = frozenset({close_op("x1"), open_op("x2")})
        bad[5] = frozenset({close_op("x2")})
        assert not d2.accepts(bad)

    def test_wrong_length_rejected(self):
        d2 = DeterminizedMatchStructure(_sync_va(1), "ab")
        with pytest.raises(ValueError):
            d2.accepts([frozenset()])

    def test_width_small_for_synchronized(self):
        # The Theorem-4.8 argument: subsets stay polynomial (here tiny).
        va = _sync_va(3)
        doc = "abcabcab"
        d2 = DeterminizedMatchStructure(va, doc)
        assert d2.subset_width() <= va.n_states
        assert d2.n_subset_states() > 0

    def test_empty_language(self):
        va = trim(regex_to_va(parse("x{a}")))
        d2 = DeterminizedMatchStructure(va, "bb")
        assert not d2.accepting


class TestNeverUsed:
    def test_unmentioned_variable(self):
        va = _sync_va(1)
        assert never_used_variables(va, frozenset({"x1", "ghost"})) == {"ghost"}

    def test_skippable_variable(self):
        va = trim(regex_to_va(parse("(x{a}|b)c")))
        # x is used on some accepting runs: not "never used".
        assert never_used_variables(va, frozenset({"x"})) == frozenset()

    def test_projected_away_variable(self):
        va = trim(regex_to_va(parse("x{a}")))
        from repro.va import project_va

        projected = trim(project_va(va, ()))
        assert never_used_variables(projected, frozenset({"x"})) == {"x"}
