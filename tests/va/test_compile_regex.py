"""Regex → VA compilation: equivalence and class preservation (Lemma 4.6)."""

import random

import pytest

from repro.regex import evaluate as regex_evaluate, parse
from repro.regex.properties import is_functional as rf_functional
from repro.regex.properties import is_sequential as rf_sequential
from repro.va import (
    evaluate_naive,
    evaluate_va,
    is_functional,
    is_sequential,
    is_synchronized_for,
    regex_to_va,
    trim,
)
from repro.workloads import random_sequential_formula


class TestEquivalence:
    @pytest.mark.parametrize(
        "text,docs",
        [
            ("a", ["", "a", "b", "aa"]),
            ("x{a*}", ["", "a", "aa"]),
            ("x{a}|y{b}", ["a", "b", "ab"]),
            ("(x{a} y{b})|y{ab}", ["a b", "ab"]),
            ("x{a?}b*", ["b", "ab", "abb"]),
            ("z{[ab]*}(x{a}|y{b})", ["a", "b", "ab", "ba"]),
            ("x{ε}a|x{a}", ["a"]),
            ("∅", ["", "a"]),
            ("ε", ["", "a"]),
        ],
    )
    def test_matches_reference_semantics(self, text, docs):
        formula = parse(text)
        va = regex_to_va(formula)
        for doc in docs:
            assert evaluate_naive(va, doc) == regex_evaluate(formula, doc), doc

    def test_randomized_equivalence(self):
        rng = random.Random(7)
        for trial in range(25):
            formula = random_sequential_formula(rng.randint(0, 2), rng, depth=3)
            va = regex_to_va(formula)
            for _ in range(3):
                doc = "".join(rng.choice("ab") for _ in range(rng.randint(0, 4)))
                assert evaluate_naive(va, doc) == regex_evaluate(formula, doc), (
                    formula.to_text(),
                    doc,
                )

    def test_shared_ast_nodes_get_fresh_states(self):
        # Regression: the ε singleton is shared across captures; fragments
        # must not be (a run could otherwise open x and close y).
        formula = parse("x{ε}y{ε}a")
        rel = evaluate_va(trim(regex_to_va(formula)), "a")
        assert len(rel) == 1
        mapping = next(iter(rel))
        assert mapping.domain == {"x", "y"}


class TestClassPreservation:
    @pytest.mark.parametrize(
        "text", ["x{a}b", "x{a}|x{b}", "x{[ab]*}y{a+}"]
    )
    def test_functional_formula_gives_functional_va(self, text):
        formula = parse(text)
        assert rf_functional(formula)
        assert is_functional(trim(regex_to_va(formula)))

    @pytest.mark.parametrize("text", ["(x{a}|ε)b", "x{a}(y{b}|ε)"])
    def test_sequential_formula_gives_sequential_va(self, text):
        formula = parse(text)
        assert rf_sequential(formula)
        va = trim(regex_to_va(formula))
        assert is_sequential(va)
        assert not is_functional(va)

    def test_synchronized_preserved(self):
        # Example 4.5: (x{Σ*} ∨ ε)·y{Σ*} — synchronized for y, not x.
        formula = parse("(x{[ab]*}|ε)y{[ab]*}")
        va = trim(regex_to_va(formula))
        assert is_synchronized_for(va, {"y"})
        assert not is_synchronized_for(va, {"x"})

    def test_linear_size(self):
        formula = parse("x{" + "a" * 200 + "}")
        va = regex_to_va(formula)
        assert va.n_states <= 4 * formula.size()

    def test_deep_formula_no_recursion_error(self):
        text = "a" * 5000
        va = regex_to_va(parse(text))
        assert va.n_states > 5000
