"""The VA normalization pipeline: each pass is semantics-preserving and
the composed pipeline leaves no ε-transitions, duplicates, or dead
structure."""

from hypothesis import given, settings

from repro.regex import parse
from repro.va import (
    VA,
    NormalizeReport,
    dedup_transitions,
    drop_never_used_ops,
    eliminate_epsilon,
    evaluate_naive,
    evaluate_va,
    is_sequential,
    is_trim,
    normalize,
    open_op,
    close_op,
    regex_to_va,
    union_va,
)

from ..properties.conftest import documents, sequential_formulas

_SETTINGS = settings(max_examples=40, deadline=None)


def compile_text(text: str) -> VA:
    return regex_to_va(parse(text))


class TestDedupTransitions:
    def test_removes_duplicates(self):
        va = VA(0, {1}, [(0, "a", 1), (0, "a", 1), (0, "b", 1)])
        deduped = dedup_transitions(va)
        assert deduped.n_transitions == 2
        assert evaluate_va(deduped, "a") == evaluate_va(va, "a")

    def test_no_duplicates_returns_same_object(self):
        va = VA(0, {1}, [(0, "a", 1)])
        assert dedup_transitions(va) is va


class TestEliminateEpsilon:
    def test_removes_all_epsilon_transitions(self):
        va = union_va(compile_text("x{a}"), compile_text("y{b}"))
        assert any(label is None for _, label, _ in va.transitions)
        out = eliminate_epsilon(va)
        assert all(label is not None for _, label, _ in out.transitions)

    def test_epsilon_free_input_returned_unchanged(self):
        va = VA(0, {1}, [(0, "a", 1)])
        assert eliminate_epsilon(va) is va

    def test_accepting_through_epsilon_closure(self):
        # 0 --ε--> 1 (accepting): the empty document must stay accepted.
        va = VA(0, {1}, [(0, None, 1), (0, "a", 1)])
        out = eliminate_epsilon(va)
        assert evaluate_va(out, "") == evaluate_va(va, "")
        assert evaluate_va(out, "a") == evaluate_va(va, "a")

    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_preserves_semantics(self, formula, doc):
        va = regex_to_va(formula)
        assert evaluate_va(eliminate_epsilon(va), doc) == evaluate_naive(va, doc)


class TestDropNeverUsedOps:
    def test_ops_on_dead_branch_variables_are_dropped(self):
        # y is opened only on a branch that never reaches acceptance.
        x_open, x_close = open_op("x"), close_op("x")
        y_open = open_op("y")
        va = VA(
            0,
            {3},
            [
                (0, x_open, 1),
                (1, "a", 2),
                (2, x_close, 3),
                (0, y_open, 4),  # dead end
            ],
        )
        out = drop_never_used_ops(va)
        assert "y" not in out.variables
        assert "x" in out.variables

    def test_all_variables_used_returns_same_object(self):
        va = compile_text("x{a}")
        assert drop_never_used_ops(va) is va


class TestNormalize:
    def test_result_is_trim_epsilon_free_and_duplicate_free(self):
        va = union_va(compile_text("x{(a|b)+}"), compile_text("x{a*}b"))
        out = normalize(va)
        assert is_trim(out)
        assert all(label is not None for _, label, _ in out.transitions)
        assert len(set(out.transitions)) == out.n_transitions

    def test_idempotent_up_to_fingerprint(self):
        va = union_va(compile_text("x{(a|b)+}"), compile_text("y{a}c"))
        once = normalize(va)
        twice = normalize(once)
        assert once.fingerprint() == twice.fingerprint()

    def test_report_accounts_sizes(self):
        va = union_va(compile_text("x{a+}"), compile_text("y{b}"))
        report = NormalizeReport()
        out = normalize(va, report)
        assert report.states_before == va.n_states
        assert report.states_after == out.n_states
        assert report.epsilon_removed >= 2  # the fresh initial's ε-edges
        assert report.states_removed >= 0

    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_preserves_semantics_and_sequentiality(self, formula, doc):
        va = regex_to_va(formula)
        out = normalize(va)
        assert is_sequential(out)
        assert evaluate_va(out, doc) == evaluate_naive(va, doc)

    @given(sequential_formulas(max_vars=2), sequential_formulas(max_vars=2), documents)
    @_SETTINGS
    def test_normalized_union_matches_plain_union(self, f1, f2, doc):
        a1, a2 = regex_to_va(f1), regex_to_va(f2)
        plain = union_va(a1, a2)
        assert evaluate_va(normalize(plain), doc) == evaluate_naive(plain, doc)


class TestFingerprint:
    def test_equal_up_to_state_names(self):
        va = compile_text("x{(a|b)+}")
        renamed = va.map_states(lambda s: ("tag", s))
        assert va.fingerprint() == renamed.fingerprint()

    def test_distinguishes_structure(self):
        assert (
            compile_text("x{a}").fingerprint()
            != compile_text("x{b}").fingerprint()
        )

    def test_cached(self):
        va = compile_text("x{a}")
        assert va.fingerprint() is va.fingerprint()
