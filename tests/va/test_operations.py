"""Structural VA operations: trim, union, projection, mapping paths."""

import pytest

from repro.core import Mapping, Span, SpannerError
from repro.va import (
    VA,
    close_op,
    empty_va,
    evaluate_naive,
    evaluate_va,
    is_trim,
    mapping_path_va,
    open_op,
    ops_at_positions,
    project_va,
    relation_va,
    rename_variables,
    single_span_va,
    trim,
    union_va,
    universal_empty_mapping_va,
)


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


class TestTrim:
    def test_removes_unreachable(self):
        va = VA(0, (1,), [(0, "a", 1), (2, "a", 1)])
        trimmed = trim(va)
        assert 2 not in trimmed.states

    def test_removes_dead_ends(self):
        va = VA(0, (1,), [(0, "a", 1), (0, "b", 2)])
        trimmed = trim(va)
        assert 2 not in trimmed.states

    def test_dead_initial_yields_empty_automaton(self):
        va = VA(0, (), [(0, "a", 1)])
        trimmed = trim(va)
        assert trimmed.accepting == frozenset()
        assert trimmed.n_transitions == 0

    def test_is_trim(self):
        assert is_trim(VA(0, (1,), [(0, "a", 1)]))
        assert not is_trim(VA(0, (1,), [(0, "a", 1), (0, "b", 2)]))

    def test_trim_preserves_semantics(self):
        va = VA(0, (1,), [(0, "a", 1), (0, "b", 2), (3, "a", 1)])
        assert evaluate_naive(trim(va), "a") == evaluate_naive(va, "a")


class TestUnionProjection:
    def test_union_va(self):
        left = VA(0, (1,), [(0, open_op("x"), 2), (2, "a", 3), (3, close_op("x"), 1)])
        right = VA(0, (1,), [(0, "a", 1)])
        combined = union_va(left, right)
        assert evaluate_va(combined, "a") == {m(x=(1, 2)), Mapping()}

    def test_project_drops_variables(self):
        va = VA(
            0,
            (4,),
            [
                (0, open_op("x"), 1),
                (1, "a", 2),
                (2, close_op("x"), 3),
                (3, open_op("y"), 3),
                (3, close_op("y"), 4),
            ],
        )
        projected = project_va(va, {"x"})
        assert projected.variables == {"x"}
        assert evaluate_va(projected, "a") == {m(x=(1, 2))}

    def test_rename_variables(self):
        va = single_span_va("x", "ab")
        renamed = rename_variables(va, {"x": "z"})
        assert renamed.variables == {"z"}

    def test_rename_collision_rejected(self):
        va = VA(
            0,
            (2,),
            [
                (0, open_op("x"), 1),
                (1, close_op("x"), 1),
                (1, open_op("y"), 2),
                (2, close_op("y"), 2),
            ],
        )
        with pytest.raises(SpannerError):
            rename_variables(va, {"x": "y"})

    def test_empty_va(self):
        assert evaluate_va(empty_va(), "abc").is_empty

    def test_universal_empty_mapping_va(self):
        va = universal_empty_mapping_va("ab")
        assert evaluate_va(va, "abba") == {Mapping()}
        assert evaluate_va(va, "") == {Mapping()}


class TestOpsSchedule:
    def test_simple_schedule(self):
        buckets = ops_at_positions(m(x=(1, 3)), 3)
        assert buckets[0] == [open_op("x")]
        assert buckets[2] == [close_op("x")]

    def test_empty_span_opens_before_closing(self):
        buckets = ops_at_positions(m(x=(2, 2)), 2)
        assert buckets[1] == [open_op("x"), close_op("x")]

    def test_closes_before_opens_at_same_position(self):
        buckets = ops_at_positions(m(x=(1, 2), y=(2, 3)), 2)
        assert buckets[1] == [close_op("x"), open_op("y")]

    def test_mapping_beyond_document_rejected(self):
        with pytest.raises(SpannerError):
            ops_at_positions(m(x=(1, 9)), 3)


class TestMappingPaths:
    @pytest.mark.parametrize(
        "mapping",
        [
            Mapping(),
            m(x=(1, 3)),
            m(x=(1, 1)),
            m(x=(4, 4)),
            m(x=(1, 2), y=(2, 3)),
            m(x=(2, 2), y=(1, 4)),
        ],
    )
    def test_path_va_roundtrip(self, mapping):
        doc = "abc"
        va = mapping_path_va(mapping, doc)
        assert evaluate_va(va, doc) == {mapping}

    def test_path_rejects_other_documents(self):
        va = mapping_path_va(m(x=(1, 2)), "ab")
        assert evaluate_va(va, "ba").is_empty

    def test_relation_va(self):
        mappings = {m(x=(1, 2)), m(x=(2, 3)), Mapping()}
        va = relation_va(mappings, "ab")
        assert evaluate_va(va, "ab") == mappings

    def test_relation_va_empty(self):
        assert evaluate_va(relation_va([], "ab"), "ab").is_empty

    def test_empty_document_path(self):
        va = mapping_path_va(m(x=(1, 1)), "")
        assert evaluate_va(va, "") == {m(x=(1, 1))}

    def test_single_span_va(self):
        rel = evaluate_va(single_span_va("x", "ab"), "ab")
        assert rel == {m(x=(i, j)) for i in range(1, 4) for j in range(i, 4)}
