"""The numpy state-plane substrate: plane packing round-trips, the
frontier-node kernel against the scalar :class:`TransitionKernel`, run
doubling on planes, the cache bound, and the adaptive document sweep."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Document
from repro.va import TransitionKernel, regex_to_va, trim
from repro.va.vectorized import numpy_available

from ..properties.conftest import sequential_formulas

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized substrate needs numpy"
)

_SETTINGS = settings(max_examples=60, deadline=None)

#: Masks wide enough to need three uint64 planes.
wide_masks = st.integers(min_value=0, max_value=2**170 - 1)

#: Documents biased toward long single-letter runs (the doubling path).
run_documents = st.lists(
    st.tuples(st.sampled_from("abc"), st.integers(min_value=1, max_value=9)),
    min_size=0,
    max_size=5,
).map(lambda runs: "".join(letter * length for letter, length in runs))


def _vectorized_for(formula):
    return trim(regex_to_va(formula)).vectorized()


def _small_va():
    from repro.regex import parse

    return trim(regex_to_va(parse("(a|b)*x{a+b}(a|b)*")))


def _small_vva():
    return _small_va().vectorized()


class TestPlanePacking:
    @given(wide_masks)
    def test_mask_round_trips_through_planes(self, mask):
        from repro.va.vectorized import mask_to_planes, planes_to_mask

        planes = mask_to_planes(mask, 3)
        assert planes.shape == (3,)
        assert planes_to_mask(planes) == mask

    @given(st.lists(wide_masks, min_size=1, max_size=8))
    def test_mask_lists_round_trip_through_plane_arrays(self, masks):
        from repro.va.vectorized import _masks_from_planes, _planes_from_masks

        planes = _planes_from_masks(masks, 3)
        assert planes.shape == (len(masks), 3)
        assert _masks_from_planes(planes) == masks

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1))
    def test_single_plane_fast_path_round_trips(self, masks):
        from repro.va.vectorized import _masks_from_planes, _planes_from_masks

        planes = _planes_from_masks(masks, 1)
        assert _masks_from_planes(planes) == masks

    @given(st.lists(wide_masks, min_size=1, max_size=8))
    def test_popcounts_match_int_bit_count(self, masks):
        from repro.va.vectorized import _planes_from_masks, _popcounts

        counts = _popcounts(_planes_from_masks(masks, 3))
        assert counts.tolist() == [mask.bit_count() for mask in masks]

    def test_plane_word_layout_is_little_endian(self):
        from repro.va.vectorized import mask_to_planes

        # State 64 lives in bit 0 of word 1.
        planes = mask_to_planes(1 << 64, 2)
        assert planes.tolist() == [0, 1]


class TestVectorizedKernel:
    @given(sequential_formulas(), st.data())
    @_SETTINGS
    def test_step_matches_the_scalar_kernel(self, formula, data):
        vva = _vectorized_for(formula)
        indexed = vva.indexed
        if not len(indexed.alphabet):
            return
        scalar = TransitionKernel(indexed)
        kernel = vva.kernel()
        lid = data.draw(
            st.integers(min_value=0, max_value=len(indexed.alphabet) - 1)
        )
        mask = data.draw(
            st.integers(min_value=0, max_value=(1 << indexed.n_states) - 1)
        )
        assert kernel.step(lid, mask) == scalar.step(lid, mask)

    @given(sequential_formulas(), st.data())
    @_SETTINGS
    def test_advance_equals_per_letter_stepping(self, formula, data):
        vva = _vectorized_for(formula)
        indexed = vva.indexed
        if not len(indexed.alphabet):
            return
        kernel = vva.kernel()
        lid = data.draw(
            st.integers(min_value=0, max_value=len(indexed.alphabet) - 1)
        )
        length = data.draw(st.integers(min_value=0, max_value=40))
        mask = data.draw(
            st.integers(min_value=0, max_value=(1 << indexed.n_states) - 1)
        )
        expected = mask
        for _ in range(length):
            expected = kernel.step(lid, expected)
        assert kernel.advance(lid, mask, length) == expected

    @given(sequential_formulas(), st.data())
    @_SETTINGS
    def test_pred_step_is_the_transpose_of_step(self, formula, data):
        vva = _vectorized_for(formula)
        indexed = vva.indexed
        if not len(indexed.alphabet):
            return
        kernel = vva.kernel()
        lid = data.draw(
            st.integers(min_value=0, max_value=len(indexed.alphabet) - 1)
        )
        succ = indexed.successor_masks[lid]
        for target in range(indexed.n_states):
            pred_mask = kernel.pred_step(lid, 1 << target)
            expected = 0
            for source in range(indexed.n_states):
                if (succ[source] >> target) & 1:
                    expected |= 1 << source
            assert pred_mask == expected

    @given(sequential_formulas(), run_documents)
    @_SETTINGS
    def test_frontier_matches_per_letter_fold(self, formula, text):
        vva = _vectorized_for(formula)
        indexed = vva.indexed
        kernel = vva.kernel()
        mask = 1 << indexed.initial_id
        expected = mask
        ids = indexed.alphabet.ids
        for letter in text:
            lid = ids.get(letter, -1)
            expected = 0 if lid < 0 else kernel.step(lid, expected)
            if not expected:
                break
        assert kernel.frontier(Document(text), mask) == expected

    def test_frontier_takes_both_adaptive_paths(self):
        vva = _small_vva()
        kernel = vva.kernel()
        letter = vva.alphabet.signature[0]
        mask = 1 << vva.indexed.initial_id
        # One long run: run-compressed (run_hits moves, if mask survives
        # past the first step).
        before = kernel.run_hits
        kernel.frontier(Document(letter * 64), mask)
        compressed_hits = kernel.run_hits - before
        # Alternating letters (run length 1): the per-position node walk.
        letters = vva.alphabet.signature
        text = "".join(letters[i % len(letters)] for i in range(12))
        before = kernel.run_hits
        result = kernel.frontier(Document(text), mask)
        assert kernel.run_hits == before  # node walk, no run compression
        expected = mask
        ids = vva.alphabet.ids
        for ch in text:
            expected = kernel.step(ids[ch], expected)
            if not expected:
                break
        assert result == expected
        assert compressed_hits >= 0  # the run path at least ran

    def test_frontier_rejects_unknown_letters_on_both_paths(self):
        vva = _small_vva()
        kernel = vva.kernel()
        letter = vva.alphabet.signature[0]
        mask = 1 << vva.indexed.initial_id
        assert kernel.frontier(Document("Z" * 40 + letter), mask) == 0
        assert kernel.frontier(Document("Z" + letter + "Z" + letter), mask) == 0

    def test_empty_document_returns_the_start_mask(self):
        vva = _small_vva()
        assert vva.kernel().frontier(Document(""), 0b11) == 0b11
        assert vva.kernel().frontier(Document("abc"), 0) == 0

    def test_powers_are_memoized(self):
        vva = _small_vva()
        kernel = vva.kernel()
        p3 = kernel.power(0, 3)
        assert kernel.power(0, 3) is p3

    def test_step_misses_stop_growing_on_revisits(self):
        vva = _small_vva()
        kernel = vva.kernel()
        doc = Document("ab" * 20)
        mask = 1 << vva.indexed.initial_id
        kernel.frontier(doc, mask)
        misses = kernel.step_misses
        kernel.frontier(doc, mask)  # every frontier already interned
        assert kernel.step_misses == misses

    def test_cache_bound_degrades_gracefully(self):
        from repro.va.vectorized import VectorizedKernel

        class TinyCache(VectorizedKernel):
            STEP_CACHE_LIMIT = 2

        vva = _small_vva()
        scalar = TransitionKernel(vva.indexed)
        kernel = TinyCache(vva)
        mask = 1 << vva.indexed.initial_id
        text = "abab" * 8
        expected = mask
        for ch in text:
            expected = scalar.step(vva.alphabet.ids[ch], expected)
        assert kernel.frontier(Document(text), mask) == expected
        assert kernel._cached_steps <= TinyCache.STEP_CACHE_LIMIT


class TestVectorizedVA:
    def test_accessor_caches_on_the_automaton(self):
        va = _small_va()
        assert va.vectorized() is va.vectorized()
        assert va.vectorized().kernel() is va.vectorized().kernel()

    def test_succ_planes_encode_the_successor_masks(self):
        from repro.va.vectorized import planes_to_mask

        vva = _small_vva()
        indexed = vva.indexed
        assert vva.succ_planes.shape == (
            len(indexed.alphabet),
            indexed.n_states,
            vva.n_planes,
        )
        for lid, per_letter in enumerate(indexed.successor_masks):
            for sid, mask in enumerate(per_letter):
                assert planes_to_mask(vva.succ_planes[lid, sid]) == mask

    def test_multi_plane_automaton_has_multiple_planes(self):
        va = _multi_plane_va()
        vva = va.vectorized()
        assert vva.n_states > 64
        assert vva.n_planes >= 2


class TestMultiPlaneKernel:
    """>64-state automata: every plane operation spans several words."""

    def test_frontier_matches_scalar_kernel_across_planes(self):
        va = _multi_plane_va()
        vva = va.vectorized()
        scalar = TransitionKernel(vva.indexed)
        kernel = vva.kernel()
        ids = vva.alphabet.ids
        mask = 1 << vva.indexed.initial_id
        for text in ("ab" * 40, "a" * 100 + "b", "b" * 3, ""):
            expected = mask
            for ch in text:
                expected = scalar.step(ids[ch], expected)
            assert kernel.frontier(Document(text), mask) == expected

    def test_pred_step_transpose_across_planes(self):
        va = _multi_plane_va()
        vva = va.vectorized()
        kernel = vva.kernel()
        succ = vva.indexed.successor_masks[0]
        full = (1 << vva.n_states) - 1
        pred_all = kernel.pred_step(0, full)
        expected = 0
        for source, targets in enumerate(succ):
            if targets:
                expected |= 1 << source
        assert pred_all == expected


def _multi_plane_va():
    """A sequential VA with more than 64 dense states (≥ 2 planes)."""
    from repro.regex import parse

    formula = parse("(a|b)*x{" + "ab" * 12 + "a+}(a|b)*")
    va = trim(regex_to_va(formula))
    assert va.indexed().n_states > 64
    return va


class TestFrontierAgainstForwardLayers:
    @given(sequential_formulas(), st.text(alphabet="ab", max_size=6))
    @_SETTINGS
    def test_graph_forward_layers_match_indexed(self, formula, text):
        from repro.va import IndexedMatchGraph, VectorizedMatchGraph

        va = trim(regex_to_va(formula))
        doc = Document(text)
        indexed_graph = IndexedMatchGraph(va.indexed(), doc)
        vectorized_graph = VectorizedMatchGraph(va.vectorized(), doc)
        assert vectorized_graph.forward == indexed_graph.forward
        assert vectorized_graph.alive == indexed_graph.alive
        assert vectorized_graph.jump == indexed_graph.jump
        assert vectorized_graph.is_empty == indexed_graph.is_empty
        assert vectorized_graph.states_alive() == indexed_graph.states_alive()
        assert vectorized_graph.width() == indexed_graph.width()
