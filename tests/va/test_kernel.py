"""The run-compressed transition kernel: power doubling, predecessor
transformers, document RLE/histogram caches, and the shared bit helpers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Document
from repro.utils import apply_masks, iter_bits
from repro.va import TransitionKernel, regex_to_va, trim
from repro.workloads import random_sequential_formula

from ..properties.conftest import sequential_formulas

_SETTINGS = settings(max_examples=60, deadline=None)

#: Documents biased toward long single-letter runs (the kernel's target).
run_documents = st.lists(
    st.tuples(st.sampled_from("abc"), st.integers(min_value=1, max_value=9)),
    min_size=0,
    max_size=5,
).map(lambda runs: "".join(letter * length for letter, length in runs))


def _kernel_for(formula):
    return trim(regex_to_va(formula)).indexed().kernel()


class TestBitHelpers:
    @given(st.integers(min_value=0, max_value=2**70 - 1))
    def test_iter_bits_matches_binary_expansion(self, mask):
        expected = [i for i in range(mask.bit_length()) if (mask >> i) & 1]
        assert list(iter_bits(mask)) == expected

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=8, max_size=8),
        st.integers(min_value=0, max_value=255),
    )
    def test_apply_masks_is_the_union_over_set_bits(self, rows, mask):
        expected = 0
        for bit in iter_bits(mask):
            expected |= rows[bit]
        assert apply_masks(rows, mask) == expected


class TestTransitionKernel:
    @given(sequential_formulas(), st.data())
    @_SETTINGS
    def test_advance_equals_per_letter_stepping(self, formula, data):
        indexed = trim(regex_to_va(formula)).indexed()
        kernel = TransitionKernel(indexed)
        if not len(indexed.alphabet):
            return
        lid = data.draw(
            st.integers(min_value=0, max_value=len(indexed.alphabet) - 1)
        )
        length = data.draw(st.integers(min_value=0, max_value=40))
        mask = data.draw(
            st.integers(min_value=0, max_value=(1 << indexed.n_states) - 1)
        )
        expected = mask
        for _ in range(length):
            expected = kernel.step(lid, expected)
        assert kernel.advance(lid, mask, length) == expected

    def test_powers_are_memoized_per_letter_and_exponent(self):
        kernel = _kernel_for(random_sequential_formula(1, random.Random(7)))
        lid = 0
        p3 = kernel.power(lid, 3)
        assert kernel.power(lid, 3) is p3  # same object: memoized
        assert kernel.power(lid, 1) is kernel._powers[lid][1]

    @given(sequential_formulas(), st.data())
    @_SETTINGS
    def test_pred_row_is_the_transpose_of_the_successor_relation(
        self, formula, data
    ):
        indexed = trim(regex_to_va(formula)).indexed()
        kernel = TransitionKernel(indexed)
        if not len(indexed.alphabet):
            return
        lid = data.draw(
            st.integers(min_value=0, max_value=len(indexed.alphabet) - 1)
        )
        pred = kernel.pred_row(lid)
        succ = indexed.successor_masks[lid]
        for source in range(indexed.n_states):
            for target in range(indexed.n_states):
                forward = bool((succ[source] >> target) & 1)
                backward = bool((pred[target] >> source) & 1)
                assert forward == backward

    def test_run_hits_counts_compressed_runs_only(self):
        kernel = _kernel_for(random_sequential_formula(1, random.Random(3)))
        before = kernel.run_hits
        kernel.advance(0, 1, 1)  # single letter: not a compressed run
        assert kernel.run_hits == before
        kernel.advance(0, 1, 12)
        assert kernel.run_hits == before + 1


class TestDocumentRunCaches:
    @given(st.text(alphabet="abc", max_size=30))
    def test_runs_reassemble_the_document(self, text):
        doc = Document(text)
        runs = doc.runs()
        assert "".join(letter * length for letter, _, length in runs) == text
        # Starts are consistent and runs are maximal.
        position = 0
        for index, (letter, start, length) in enumerate(runs):
            assert start == position and length >= 1
            if index:
                assert runs[index - 1][0] != letter
            position += length
        assert doc.runs() is runs  # cached

    @given(st.text(alphabet="abc", max_size=30))
    def test_letter_counts_match_the_text(self, text):
        doc = Document(text)
        counts = doc.letter_counts()
        assert counts == {ch: text.count(ch) for ch in set(text)}
        assert doc.letter_counts() is counts  # cached
