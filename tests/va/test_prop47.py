"""Proposition 4.7: synchronized VAs are strictly less expressive.

The witness: γ := (a·x{ε}·a) ∨ (b·x{ε}·b).  No sequential VA synchronized
for x is equivalent to γ.  We cannot test nonexistence directly, but we
can reproduce the proof's mechanism concretely:

* γ itself (compiled) is functional yet *not* synchronized for x;
* forcing unique target states by gluing the two x-operations — the only
  way to satisfy the synchronizedness condition — creates the proof's
  crossover run and accepts the forbidden document "ab".
"""

from repro.core import Mapping, Span
from repro.regex import parse
from repro.va import (
    VA,
    close_op,
    evaluate_naive,
    evaluate_va,
    is_functional,
    is_synchronized_for,
    open_op,
    regex_to_va,
    trim,
)

GAMMA = parse("(a·x{ε}a)|(b·x{ε}b)")


def witness_va() -> VA:
    return trim(regex_to_va(GAMMA))


class TestWitness:
    def test_gamma_semantics(self):
        va = witness_va()
        expected = {Mapping({"x": Span(2, 2)})}
        assert evaluate_va(va, "aa") == expected
        assert evaluate_va(va, "bb") == expected
        assert evaluate_va(va, "ab").is_empty
        assert evaluate_va(va, "ba").is_empty

    def test_gamma_is_functional_but_not_synchronized(self):
        va = witness_va()
        assert is_functional(va)
        assert not is_synchronized_for(va, {"x"})

    def test_gluing_the_operations_breaks_the_spanner(self):
        # The proof's argument: identify the targets of the two x⊢ (and
        # ⊣x) occurrences to force unique target states.  The glued
        # automaton is synchronized for x — and now accepts "ab" via the
        # crossover run ρ1,2, so it is NOT equivalent to γ.
        glued = VA(
            0,
            (4,),
            [
                (0, "a", 1),
                (0, "b", 1),  # both letter prefixes funnel into one state
                (1, open_op("x"), 2),
                (2, close_op("x"), 3),
                (3, "a", 4),
                (3, "b", 4),
            ],
        )
        assert is_synchronized_for(glued, {"x"})
        crossover = evaluate_naive(glued, "ab")
        assert not crossover.is_empty  # accepts the forbidden document
        assert crossover != evaluate_va(witness_va(), "ab")
