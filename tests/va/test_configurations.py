"""Extended variable configurations c̃_q (§3.1, Examples 3.4/3.5)."""

import pytest

from repro.core import NotSequentialError
from repro.va import (
    CLOSED,
    DONE,
    OPEN,
    UNSEEN,
    VA,
    accepting_used_sets,
    close_op,
    configuration_table,
    extended_configuration,
    is_semi_functional_for,
    open_op,
    status_sets,
    trim,
)

from .test_runs import example_23_va


class TestStatusSets:
    def test_example_34_ambiguous_state(self):
        # In Example 2.3's VA, q2 is reachable with x closed (run ρ1) and
        # with x unseen (run ρ2): c̃_q2(x) = d.
        va = trim(example_23_va())
        sets = status_sets(va, "x")
        assert sets[2] == frozenset((UNSEEN, CLOSED))

    def test_initial_state_is_unseen(self):
        va = trim(example_23_va())
        assert status_sets(va, "x")[0] == frozenset((UNSEEN,))

    def test_open_state(self):
        va = trim(example_23_va())
        assert status_sets(va, "x")[1] == frozenset((OPEN,))

    def test_double_open_raises(self):
        va = VA(
            0,
            (2,),
            [(0, open_op("x"), 1), (1, open_op("x"), 1), (1, close_op("x"), 2)],
        )
        with pytest.raises(NotSequentialError):
            status_sets(va, "x")


class TestExtendedConfiguration:
    def test_example_34_labels(self):
        va = trim(example_23_va())
        config = extended_configuration(va, "x")
        assert config[0] == UNSEEN
        assert config[1] == OPEN
        assert config[2] == DONE

    def test_configuration_table(self):
        va = trim(example_23_va())
        table = configuration_table(va)
        assert table[2]["x"] == DONE

    def test_table_requires_trim(self):
        va = VA(0, (1,), [(0, "a", 1), (0, "b", 2)])  # state 2 is dead
        with pytest.raises(NotSequentialError):
            configuration_table(va)


class TestSemiFunctionalPredicate:
    def test_example_23_is_not_semi_functional(self):
        assert not is_semi_functional_for(trim(example_23_va()), {"x"})

    def test_functional_fragment_is_semi_functional(self):
        transitions = [
            t for t in example_23_va().transitions if not (t[0] == 0 and t[2] == 2)
        ]
        va = trim(VA(0, (2,), transitions))
        assert is_semi_functional_for(va, {"x"})

    def test_unmentioned_variable_ignored(self):
        va = trim(example_23_va())
        assert is_semi_functional_for(va, {"ghost"})


class TestUsedSets:
    def test_used_sets_after_semi_functionalisation(self):
        from repro.va import make_semi_functional

        va = make_semi_functional(trim(example_23_va()), {"x"})
        used = accepting_used_sets(va, {"x"})
        assert set(used.values()) == {frozenset(), frozenset({"x"})}

    def test_ambiguous_accepting_state_rejected(self):
        va = trim(example_23_va())
        with pytest.raises(NotSequentialError):
            accepting_used_sets(va, {"x"})
