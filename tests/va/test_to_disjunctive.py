"""Sequential VA → disjunctive functional VA (Prop. 3.9(2), 3.11)."""

import pytest

from repro.core import NotSequentialError, SpannerError
from repro.va import (
    VA,
    count_functional_components,
    evaluate_naive,
    evaluate_va,
    functional_components,
    is_functional,
    open_op,
    regex_to_va,
    to_disjunctive_functional_va,
    trim,
)
from repro.workloads import prop311_va
from repro.regex import parse

from .test_runs import example_23_va


class TestComponents:
    def test_example_23_splits_in_two(self):
        components = functional_components(trim(example_23_va()))
        assert set(components) == {frozenset(), frozenset({"x"})}
        for used, component in components.items():
            assert is_functional(component)
            assert component.variables == used

    def test_component_count_prop311(self):
        # Example 3.10 / Prop. 3.11: the family needs 2^n components.
        for n in (1, 2, 3, 4):
            assert count_functional_components(trim(prop311_va(n))) == 2 ** n

    def test_max_components_guard(self):
        with pytest.raises(SpannerError):
            functional_components(trim(prop311_va(4)), max_components=8)

    def test_non_sequential_rejected(self):
        va = VA(0, (1,), [(0, open_op("x"), 1)])
        with pytest.raises(NotSequentialError):
            functional_components(va)


class TestEquivalence:
    @pytest.mark.parametrize("doc", ["", "a", "ab", "ba"])
    def test_example_23(self, doc):
        va = trim(example_23_va())
        dfunc = to_disjunctive_functional_va(va)
        assert evaluate_va(dfunc, doc) == evaluate_naive(va, doc)

    @pytest.mark.parametrize("doc", ["", "a", "ab"])
    def test_prop311_family(self, doc):
        va = trim(prop311_va(2))
        dfunc = to_disjunctive_functional_va(va)
        assert evaluate_va(dfunc, doc) == evaluate_naive(va, doc)

    def test_optional_variables_formula(self):
        f = parse("(x{a}|ε)(y{b}|ε)[ab]*")
        va = trim(regex_to_va(f))
        dfunc = to_disjunctive_functional_va(va)
        for doc in ("", "a", "b", "ab", "ba"):
            assert evaluate_va(dfunc, doc) == evaluate_va(va, doc), doc

    def test_empty_spanner(self):
        va = trim(regex_to_va(parse("∅")))
        dfunc = to_disjunctive_functional_va(va)
        assert evaluate_va(dfunc, "a").is_empty
