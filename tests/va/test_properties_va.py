"""VA property checks: sequential, functional, synchronized (§2.3, §4.2)."""

from repro.va import (
    VA,
    close_op,
    is_functional,
    is_sequential,
    is_synchronized,
    is_synchronized_for,
    open_op,
    regex_to_va,
    trim,
    unique_target_state,
)
from repro.regex import parse

from .test_runs import example_23_va


class TestSequential:
    def test_example_23_is_sequential_not_functional(self):
        va = example_23_va()
        assert is_sequential(va)
        assert not is_functional(va)  # the q0 → q2 branch skips x

    def test_dropping_skip_branch_makes_functional(self):
        # "Omitting the transition from q0 to q2 results in a functional VA."
        transitions = [
            t for t in example_23_va().transitions if not (t[0] == 0 and t[2] == 2)
        ]
        va = VA(0, (2,), transitions)
        assert is_functional(va)

    def test_double_open_not_sequential(self):
        va = VA(
            0,
            (2,),
            [
                (0, open_op("x"), 1),
                (1, open_op("x"), 1),
                (1, close_op("x"), 2),
            ],
        )
        assert not is_sequential(va)

    def test_accept_while_open_not_sequential(self):
        va = VA(0, (1,), [(0, open_op("x"), 1), (1, close_op("x"), 2)])
        assert not is_sequential(va)

    def test_close_without_open_not_sequential(self):
        va = VA(0, (1,), [(0, close_op("x"), 1)])
        assert not is_sequential(va)

    def test_variable_free_is_sequential_and_functional(self):
        va = VA(0, (1,), [(0, "a", 1)])
        assert is_sequential(va) and is_functional(va)


class TestSynchronized:
    def test_unique_target_state(self):
        va = example_23_va()
        assert unique_target_state(va, open_op("x")) == 1
        assert unique_target_state(va, close_op("x")) == 2

    def test_multiple_targets_detected(self):
        va = VA(
            0,
            (3,),
            [
                (0, open_op("x"), 1),
                (0, open_op("x"), 2),
                (1, close_op("x"), 3),
                (2, close_op("x"), 3),
            ],
        )
        assert unique_target_state(va, open_op("x")) is None
        assert not is_synchronized_for(va, {"x"})

    def test_example_23_not_synchronized_for_x(self):
        # Unique targets hold, but some accepting runs skip x entirely.
        va = example_23_va()
        assert not is_synchronized_for(va, {"x"})

    def test_example_45_automaton(self):
        va = trim(regex_to_va(parse("(x{[ab]*}|ε)y{[ab]*}")))
        assert is_synchronized_for(va, {"y"})
        assert not is_synchronized_for(va, {"x"})
        assert not is_synchronized(va)

    def test_unmentioned_variable_is_trivially_synchronized(self):
        va = VA(0, (1,), [(0, "a", 1)])
        assert is_synchronized_for(va, {"ghost"})

    def test_fully_synchronized_chain(self):
        va = trim(regex_to_va(parse("x{a*}by{a*}")))
        assert is_synchronized(va)
