"""VA structure: states, transitions, labels (§2.3)."""

import pytest

from repro.core import SpannerError
from repro.va import VA, VarOp, close_op, gamma, open_op


def simple_va() -> VA:
    """q0 --x⊢--> q1 --a--> q1 --⊣x--> q2, accepting q2."""
    return VA(
        0,
        (2,),
        [
            (0, open_op("x"), 1),
            (1, "a", 1),
            (1, close_op("x"), 2),
        ],
    )


class TestVarOp:
    def test_rendering(self):
        assert str(open_op("x")) == "x⊢"
        assert str(close_op("x")) == "⊣x"

    def test_is_close(self):
        assert close_op("x").is_close and not open_op("x").is_close

    def test_gamma(self):
        assert gamma({"x"}) == {open_op("x"), close_op("x")}
        assert len(gamma({"x", "y"})) == 4


class TestConstruction:
    def test_states_inferred_from_transitions(self):
        va = simple_va()
        assert va.states == {0, 1, 2}
        assert va.n_states == 3 and va.n_transitions == 3

    def test_variables_collected(self):
        assert simple_va().variables == {"x"}

    def test_letters_collected(self):
        assert simple_va().letters() == {"a"}

    def test_isolated_states_kept(self):
        va = VA(0, (), (), states=(0, 1))
        assert va.states == {0, 1}

    def test_multi_char_letter_rejected(self):
        with pytest.raises(SpannerError):
            VA(0, (1,), [(0, "ab", 1)])

    def test_bad_label_rejected(self):
        with pytest.raises(SpannerError):
            VA(0, (1,), [(0, 42, 1)])

    def test_transitions_from(self):
        va = simple_va()
        assert (open_op("x"), 1) in va.transitions_from(0)
        assert va.transitions_from(99) == ()

    def test_is_accepting(self):
        va = simple_va()
        assert va.is_accepting(2) and not va.is_accepting(0)


class TestRewrites:
    def test_with_accepting(self):
        va = simple_va().with_accepting((1,))
        assert va.accepting == {1}
        assert va.n_transitions == 3

    def test_map_states(self):
        va = simple_va().map_states(lambda s: s + 10)
        assert va.initial == 10 and va.accepting == {12}

    def test_map_states_must_be_injective(self):
        with pytest.raises(SpannerError):
            simple_va().map_states(lambda s: 0)

    def test_relabelled_uses_bfs_order(self):
        va = VA("start", ("end",), [("start", "a", "mid"), ("mid", "b", "end")])
        canon = va.relabelled()
        assert canon.initial == 0
        assert canon.states == {0, 1, 2}

    def test_map_labels(self):
        va = simple_va().map_labels(
            lambda label: None if isinstance(label, VarOp) else label
        )
        assert va.variables == frozenset()
        assert va.n_transitions == 3

    def test_describe_smoke(self):
        text = simple_va().describe()
        assert "x⊢" in text and "initial" in text

    def test_iter_var_ops(self):
        assert set(simple_va().iter_var_ops()) == {open_op("x"), close_op("x")}
