"""Edge cases and failure injection across the VA stack."""

import pytest

from repro.core import Mapping, NotSequentialError, Span
from repro.regex import parse
from repro.va import (
    VA,
    close_op,
    enumerate_mappings,
    evaluate_naive,
    evaluate_va,
    is_sequential,
    make_semi_functional,
    open_op,
    project_va,
    regex_to_va,
    trim,
)


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


class TestEmptyDocument:
    def test_epsilon_spanner(self):
        va = trim(regex_to_va(parse("ε")))
        assert evaluate_va(va, "") == {Mapping()}

    def test_capture_of_epsilon(self):
        va = trim(regex_to_va(parse("x{ε}")))
        assert evaluate_va(va, "") == {m(x=(1, 1))}

    def test_star_spanner(self):
        va = trim(regex_to_va(parse("a*")))
        assert evaluate_va(va, "") == {Mapping()}

    def test_letter_requires_input(self):
        va = trim(regex_to_va(parse("a")))
        assert evaluate_va(va, "").is_empty


class TestUnusualAlphabets:
    def test_unicode_letters(self):
        va = trim(regex_to_va(parse("x{é*}ß")))
        assert evaluate_va(va, "ééß") == {m(x=(1, 3))}

    def test_digits_and_punctuation(self):
        va = trim(regex_to_va(parse("x{[0-9]+}\\.[0-9]+")))
        assert evaluate_va(va, "31.41") == {m(x=(1, 3))}

    def test_newline_and_tab_literals(self):
        va = trim(regex_to_va(parse("a\\nx{\\t}b")))
        assert evaluate_va(va, "a\n\tb") == {m(x=(3, 4))}


class TestStructuralOddities:
    def test_accepting_initial_state(self):
        va = VA(0, (0,), [(0, "a", 0)])
        assert evaluate_va(va, "") == {Mapping()}
        assert evaluate_va(va, "aaa") == {Mapping()}

    def test_variable_ops_on_self_loop_not_sequential(self):
        va = VA(
            0,
            (0,),
            [(0, open_op("x"), 1), (1, close_op("x"), 0), (0, "a", 0)],
        )
        # A run may open/close x arbitrarily often → invalid accepting runs.
        assert not is_sequential(va)
        with pytest.raises(NotSequentialError):
            list(enumerate_mappings(va, "a"))

    def test_naive_evaluator_handles_the_same_loop(self):
        va = VA(
            0,
            (0,),
            [(0, open_op("x"), 1), (1, close_op("x"), 0), (0, "a", 0)],
        )
        # The exhaustive baseline enumerates only the *valid* runs.
        rel = evaluate_naive(va, "a")
        assert m(x=(1, 1)) in rel and Mapping() in rel

    def test_projection_of_everything_is_boolean(self):
        va = trim(regex_to_va(parse("x{a}y{b}")))
        boolean = trim(project_va(va, ()))
        assert evaluate_va(boolean, "ab") == {Mapping()}
        assert evaluate_va(boolean, "ba").is_empty

    def test_semi_functional_of_variable_free_is_identity_semantics(self):
        va = trim(regex_to_va(parse("(a|b)*")))
        assert evaluate_va(make_semi_functional(va, ()), "ab") == {Mapping()}


class TestScale:
    def test_long_document_enumeration(self):
        va = trim(regex_to_va(parse("[ab]*x{ab}[ab]*")))
        doc = "ab" * 100
        count = sum(1 for _ in enumerate_mappings(va, doc))
        assert count == 100  # one per "ab" occurrence at even offset

    def test_wide_union(self):
        # 120 parallel captures, each a different variable.
        text = "|".join(f"v{i}{{a}}" for i in range(120))
        va = trim(regex_to_va(parse(text)))
        rel = evaluate_va(va, "a")
        assert len(rel) == 120

    def test_many_variables_in_sequence(self):
        text = "".join(f"v{i}{{a}}" for i in range(60))
        va = trim(regex_to_va(parse(text)))
        rel = evaluate_va(va, "a" * 60)
        assert len(rel) == 1
        assert len(next(iter(rel)).domain) == 60
