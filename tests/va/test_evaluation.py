"""Polynomial-delay enumeration (Theorem 2.5) vs the naive baseline."""

import random

import pytest

from repro.core import Mapping, NotSequentialError, Span
from repro.va import (
    VA,
    FactorizedVA,
    MatchGraph,
    VASpanner,
    close_op,
    enumerate_mappings,
    evaluate_naive,
    evaluate_va,
    is_nonempty,
    mapping_from_opsets,
    open_op,
    regex_to_va,
    trim,
)
from repro.workloads import random_sequential_formula
from repro.regex import parse

from .test_runs import example_23_va


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


class TestCorrectness:
    @pytest.mark.parametrize("doc", ["", "a", "ab", "ba", "abab"])
    def test_example_23(self, doc):
        va = example_23_va()
        assert evaluate_va(va, doc) == evaluate_naive(va, doc)

    def test_randomized_against_naive(self):
        rng = random.Random(99)
        for _ in range(30):
            formula = random_sequential_formula(rng.randint(0, 3), rng, depth=3)
            va = trim(regex_to_va(formula))
            for _ in range(2):
                doc = "".join(rng.choice("ab") for _ in range(rng.randint(0, 5)))
                assert evaluate_va(va, doc) == evaluate_naive(va, doc), (
                    formula.to_text(),
                    doc,
                )

    def test_no_duplicates(self):
        va = trim(regex_to_va(parse("x{[ab]*}[ab]*|[ab]*x{[ab]*}")))
        results = list(enumerate_mappings(va, "ab"))
        assert len(results) == len(set(results))

    def test_empty_document(self):
        va = trim(regex_to_va(parse("x{a*}")))
        assert evaluate_va(va, "") == {m(x=(1, 1))}

    def test_empty_result(self):
        va = trim(regex_to_va(parse("x{a}")))
        assert evaluate_va(va, "b").is_empty

    def test_epsilon_cycles_handled(self):
        va = VA(0, (1,), [(0, None, 0), (0, "a", 1), (1, None, 1)])
        assert evaluate_va(va, "a") == {Mapping()}

    def test_non_sequential_rejected(self):
        va = VA(0, (1,), [(0, open_op("x"), 1)])  # accepts with x open
        with pytest.raises(NotSequentialError):
            list(enumerate_mappings(va, "a"))

    def test_is_nonempty_short_circuits(self):
        va = trim(regex_to_va(parse("x{[ab]*}[ab]*")))
        assert is_nonempty(va, "a" * 30)  # huge output; must return fast


class TestMatchGraph:
    def test_layer_count(self):
        graph = MatchGraph(FactorizedVA(example_23_va()), "ab")
        assert len(graph.layers) == 3

    def test_dead_branches_pruned(self):
        va = trim(regex_to_va(parse("x{a}b|y{a}c")))
        graph = MatchGraph(FactorizedVA(va), "ab")
        # only the x-branch survives the backward pass
        final_states = graph.layers[-1]
        assert all(graph.final_opsets[q] for q in final_states)

    def test_emptiness_detection(self):
        va = trim(regex_to_va(parse("x{a}")))
        graph = MatchGraph(FactorizedVA(va), "b")
        assert graph.is_empty

    def test_width_bounded_by_states(self):
        va = trim(example_23_va())
        graph = MatchGraph(FactorizedVA(va), "abab")
        assert graph.width() <= va.n_states

    def test_factorized_closure_caching(self):
        fva = FactorizedVA(example_23_va())
        first = fva.closure(fva.va.initial)
        assert fva.closure(fva.va.initial) is first


class TestMappingAssembly:
    def test_simple(self):
        ops = [
            frozenset({open_op("x")}),
            frozenset({close_op("x")}),
        ]
        assert mapping_from_opsets(ops) == m(x=(1, 2))

    def test_empty_span(self):
        ops = [frozenset({open_op("x"), close_op("x")})]
        assert mapping_from_opsets(ops) == m(x=(1, 1))

    def test_double_open_rejected(self):
        ops = [frozenset({open_op("x")}), frozenset({open_op("x")})]
        with pytest.raises(NotSequentialError):
            mapping_from_opsets(ops)

    def test_close_without_open_rejected(self):
        with pytest.raises(NotSequentialError):
            mapping_from_opsets([frozenset({close_op("x")})])


class TestVASpanner:
    def test_spanner_interface(self):
        spanner = VASpanner(trim(example_23_va()))
        assert spanner.variables() == {"x"}
        assert spanner.evaluate("a") == evaluate_naive(example_23_va(), "a")

    def test_rejects_non_sequential(self):
        va = VA(0, (1,), [(0, open_op("x"), 1)])
        with pytest.raises(NotSequentialError):
            VASpanner(va)

    def test_factorization_shared_across_documents(self):
        spanner = VASpanner(trim(example_23_va()))
        assert spanner.evaluate("a") != spanner.evaluate("ab")
