"""The VA-derived document prefilter: soundness (never rejects a matching
document) and the individual necessary conditions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Document
from repro.regex import parse
from repro.va import VAPrefilter, evaluate_naive, regex_to_va, trim

from ..properties.conftest import sequential_formulas

_SETTINGS = settings(max_examples=60, deadline=None)

#: Short documents, including letters outside the ab formulas' alphabet.
documents = st.text(alphabet="abc", min_size=0, max_size=5)

#: Run-heavy documents exercising the histogram bounds harder.
run_documents = st.lists(
    st.tuples(st.sampled_from("abc"), st.integers(min_value=1, max_value=6)),
    min_size=0,
    max_size=4,
).map(lambda runs: "".join(letter * length for letter, length in runs))


def _prefilter(text: str) -> VAPrefilter:
    return trim(regex_to_va(parse(text))).prefilter()


class TestSoundness:
    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_never_rejects_a_document_with_a_nonempty_result(self, formula, doc):
        va = trim(regex_to_va(formula))
        if evaluate_naive(va, doc):
            assert va.prefilter().admits(doc)

    @given(sequential_formulas(), run_documents)
    @_SETTINGS
    def test_never_rejects_on_run_heavy_documents(self, formula, doc):
        va = trim(regex_to_va(formula))
        if evaluate_naive(va, doc):
            assert va.prefilter().admits(doc)

    @given(sequential_formulas())
    @_SETTINGS
    def test_degenerate_documents(self, formula):
        va = trim(regex_to_va(formula))
        prefilter = va.prefilter()
        for doc in ("", "a", "aaaaaa"):
            if evaluate_naive(va, doc):
                assert prefilter.admits(doc)


class TestNecessaryConditions:
    def test_alphabet_closure(self):
        prefilter = _prefilter("x{(a|b)+}")
        assert prefilter.admits("ab")
        assert not prefilter.admits("abz")  # z outside the alphabet

    def test_required_letter_and_multiplicity(self):
        prefilter = _prefilter("(a|b)*x{c}(a|b)*c(a|b)*")
        assert ("c", 2) in prefilter.required
        assert not prefilter.admits("abcab")  # only one c
        assert prefilter.admits("abcacb")

    def test_optional_letters_are_not_required(self):
        prefilter = _prefilter("a(b|ε)x{a}")
        assert dict(prefilter.required) == {"a": 2}
        assert prefilter.admits("aa")

    def test_length_window(self):
        prefilter = _prefilter("(ab)x{a(b|ε)}")
        assert prefilter.min_length == 3
        assert prefilter.max_length == 4
        assert not prefilter.admits("ab")
        assert not prefilter.admits("ababa")
        assert prefilter.admits("aba")

    def test_unbounded_length_has_no_maximum(self):
        prefilter = _prefilter("x{a+}")
        assert prefilter.max_length is None
        assert prefilter.admits("a" * 500)

    def test_empty_language_rejects_everything(self):
        from repro.va import empty_va

        prefilter = trim(empty_va()).prefilter()
        assert prefilter.empty
        assert not prefilter.admits("")
        assert not prefilter.admits("a")

    def test_empty_document_admitted_when_language_has_it(self):
        prefilter = _prefilter("x{a*}")
        assert prefilter.min_length == 0
        assert prefilter.admits("")

    def test_describe_mentions_the_conditions(self):
        text = _prefilter("(a|b)*x{c}(a|b)*c(a|b)*").describe()
        assert "c×2" in text
        assert "length" in text

    def test_admits_accepts_documents_and_strings(self):
        prefilter = _prefilter("x{a+}")
        assert prefilter.admits(Document("aaa")) == prefilter.admits("aaa")
