"""Perf-budget regression gate (ROADMAP item: CI perf budgets, first
slice).

The committed ``BENCH_kernel.json`` at the repository root is the perf
baseline: it records the E16 kernel/prefilter/backend-matrix speedups at
the SHA they were measured.  This module gates two things:

* **the committed baseline itself** — the acceptance bars of the E16
  bench must hold in the checked-in numbers (a PR that regresses perf and
  "fixes" CI by committing worse numbers fails here, visibly);
* **the live code** — the backend-matrix workload is re-run in-process
  (one 100k-letter document, reduced repeats — the tiny slice of the full
  bench) and the measured vectorized-over-indexed speedups must stay
  within ``PERF_BUDGET_TOLERANCE`` (default 30%) of the committed ones.

Speedup *ratios* are compared, never wall-clock times, so the gate is
machine independent: a slow CI runner slows both backends alike.  Set
``PERF_BUDGET_SKIP=1`` to bypass the module (emergency escape hatch for
pathological environments); set ``PERF_BUDGET_TOLERANCE=0.5`` to widen
the budget without editing code.
"""

import json
import os
import pathlib
import sys

import pytest

from repro.va.vectorized import numpy_available

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "BENCH_kernel.json"

#: Allowed relative speedup loss before the gate fails (>30% slowdown of
#: the measured speedup ratio vs the committed baseline is a regression).
TOLERANCE = float(os.environ.get("PERF_BUDGET_TOLERANCE", "0.30"))

pytestmark = pytest.mark.skipif(
    os.environ.get("PERF_BUDGET_SKIP") == "1",
    reason="perf budgets skipped via PERF_BUDGET_SKIP=1",
)


def _baseline() -> dict:
    if not BASELINE_PATH.exists():
        pytest.skip("no committed BENCH_kernel.json baseline")
    data = json.loads(BASELINE_PATH.read_text())
    if data.get("tiny"):
        pytest.skip("committed baseline was written in tiny mode")
    return data


def _bench_module():
    """The E16 bench module, imported from ``benchmarks/`` (its workload
    builders are the single source of truth for the gate's documents)."""
    bench_dir = str(REPO_ROOT / "benchmarks")
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import bench_e16_kernel_prefilter as bench

    if bench.TINY:
        pytest.skip("BENCH_E16_TINY is set: workloads not baseline-sized")
    return bench


class TestCommittedBaseline:
    """The checked-in numbers must themselves clear the acceptance bars."""

    def test_schema_and_provenance(self):
        data = _baseline()
        assert data["experiment"] == "e16_kernel_prefilter"
        assert data["git_sha"] and data["git_sha"] != "unknown"
        sections = data["sections"]
        for name in (
            "kernel_run_sweep",
            "prefilter_selectivity",
            "batch_corpus",
            "backend_matrix",
        ):
            assert sections[name]["rows"], name

    def test_kernel_acceptance_bar_holds(self):
        rows = _baseline()["sections"]["kernel_run_sweep"]["rows"]
        longest = rows[-1]
        assert longest["full_speedup"] >= 2.0, longest
        assert longest["emptiness_speedup"] >= 2.0, longest

    def test_backend_matrix_acceptance_bar_holds(self):
        section = _baseline()["sections"]["backend_matrix"]
        assert section["doc_letters"] >= 100_000, section
        low_run = section["vectorized_speedup_vs_indexed"]["low_run"]
        # The tentpole bar: ≥5x over indexed on is_nonempty and first()
        # for a low-run 100k-letter document with a >64-state query.
        assert low_run["nonempty"] >= 5.0, low_run
        assert low_run["first"] >= 5.0, low_run


@pytest.mark.skipif(not numpy_available(), reason="vectorized needs numpy")
class TestLiveSpeedupBudget:
    """Re-measure the backend matrix and compare ratios to the baseline."""

    def test_vectorized_speedup_within_budget(self):
        baseline = _baseline()["sections"]["backend_matrix"]
        bench = _bench_module()
        if bench.MATRIX_DOC_LETTERS != baseline["doc_letters"]:
            pytest.skip("bench workload size diverged from the baseline")
        committed = baseline["vectorized_speedup_vs_indexed"]["low_run"]
        measured = bench._matrix_speedups(bench._backend_matrix_sweep())
        assert "low_run" in measured, measured
        for metric in ("nonempty", "first"):
            floor = committed[metric] * (1.0 - TOLERANCE)
            assert measured["low_run"][metric] >= floor, (
                f"{metric}: measured {measured['low_run'][metric]}x, "
                f"committed {committed[metric]}x, budget floor {floor:.2f}x "
                f"(tolerance {TOLERANCE:.0%}) — the vectorized backend "
                "regressed (or the baseline needs regenerating: "
                "PYTHONPATH=src python -m pytest "
                "benchmarks/bench_e16_kernel_prefilter.py -o "
                "python_files='bench_*.py' -o python_functions='bench_*' "
                "--benchmark-disable)"
            )
