"""Perf-budget regression gate (ROADMAP item: CI perf budgets).

The committed ``BENCH_*.json`` files at the repository root are the perf
baselines: they record each experiment's speedups at the SHA they were
measured.  This module gates two things:

* **the committed baselines themselves** — the acceptance bars of the
  E14 runtime, E15 optimizer, E16 kernel, and E17 corpus-store benches
  must hold in the checked-in numbers (a PR that regresses perf and
  "fixes" CI by committing worse numbers fails here, visibly);
* **the live code** — the backend-matrix workload is re-run in-process
  (one 100k-letter document, reduced repeats — the tiny slice of the full
  bench) and the measured vectorized-over-indexed speedups must stay
  within ``PERF_BUDGET_TOLERANCE`` (default 30%) of the committed ones.

Speedup *ratios* are compared, never wall-clock times, so the gate is
machine independent: a slow CI runner slows both backends alike.  Set
``PERF_BUDGET_SKIP=1`` to bypass the module (emergency escape hatch for
pathological environments); set ``PERF_BUDGET_TOLERANCE=0.5`` to widen
the budget without editing code.
"""

import json
import os
import pathlib
import sys

import pytest

from repro.va.vectorized import numpy_available

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "BENCH_kernel.json"

#: Allowed relative speedup loss before the gate fails (>30% slowdown of
#: the measured speedup ratio vs the committed baseline is a regression).
TOLERANCE = float(os.environ.get("PERF_BUDGET_TOLERANCE", "0.30"))

pytestmark = pytest.mark.skipif(
    os.environ.get("PERF_BUDGET_SKIP") == "1",
    reason="perf budgets skipped via PERF_BUDGET_SKIP=1",
)


def _committed(name: str, experiment: str) -> dict:
    path = REPO_ROOT / name
    if not path.exists():
        pytest.skip(f"no committed {name} baseline")
    data = json.loads(path.read_text())
    if data.get("tiny"):
        pytest.skip(f"committed {name} was written in tiny mode")
    assert data["experiment"] == experiment
    assert data["git_sha"] and data["git_sha"] != "unknown"
    return data


def _baseline() -> dict:
    return _committed("BENCH_kernel.json", "e16_kernel_prefilter")


def _bench_module():
    """The E16 bench module, imported from ``benchmarks/`` (its workload
    builders are the single source of truth for the gate's documents)."""
    bench_dir = str(REPO_ROOT / "benchmarks")
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import bench_e16_kernel_prefilter as bench

    if bench.TINY:
        pytest.skip("BENCH_E16_TINY is set: workloads not baseline-sized")
    return bench


class TestCommittedBaseline:
    """The checked-in numbers must themselves clear the acceptance bars."""

    def test_schema_and_provenance(self):
        data = _baseline()
        assert data["experiment"] == "e16_kernel_prefilter"
        assert data["git_sha"] and data["git_sha"] != "unknown"
        sections = data["sections"]
        for name in (
            "kernel_run_sweep",
            "prefilter_selectivity",
            "batch_corpus",
            "backend_matrix",
            "enumeration_throughput",
        ):
            assert sections[name]["rows"], name

    def test_kernel_acceptance_bar_holds(self):
        rows = _baseline()["sections"]["kernel_run_sweep"]["rows"]
        longest = rows[-1]
        assert longest["full_speedup"] >= 2.0, longest
        assert longest["emptiness_speedup"] >= 2.0, longest

    def test_backend_matrix_acceptance_bar_holds(self):
        section = _baseline()["sections"]["backend_matrix"]
        assert section["doc_letters"] >= 100_000, section
        low_run = section["vectorized_speedup_vs_indexed"]["low_run"]
        # The tentpole bar: ≥5x over indexed on is_nonempty and first()
        # for a low-run 100k-letter document with a >64-state query.
        assert low_run["nonempty"] >= 5.0, low_run
        assert low_run["first"] >= 5.0, low_run

    def test_enumeration_throughput_acceptance_bar_holds(self):
        section = _baseline()["sections"]["enumeration_throughput"]
        assert section["doc_letters"] >= 100_000, section
        low_run = [
            r for r in section["rows"] if r["workload"] == "low_run"
        ]
        assert low_run, section["rows"]
        # The batched-enumeration bar: ≥3x full-enumeration throughput
        # (mappings/sec) over indexed on every low-run 100k-letter cell,
        # and the batched path must never lose to its own scalar walk.
        for row in low_run:
            assert row["mappings"] > 0, row
            assert row["batched_speedup_vs_indexed"] >= 3.0, row
            assert row["batched_speedup_vs_scalar"] >= 1.0, row


@pytest.mark.skipif(not numpy_available(), reason="vectorized needs numpy")
class TestLiveSpeedupBudget:
    """Re-measure the backend matrix and compare ratios to the baseline."""

    def test_vectorized_speedup_within_budget(self):
        baseline = _baseline()["sections"]["backend_matrix"]
        bench = _bench_module()
        if bench.MATRIX_DOC_LETTERS != baseline["doc_letters"]:
            pytest.skip("bench workload size diverged from the baseline")
        committed = baseline["vectorized_speedup_vs_indexed"]["low_run"]
        measured = bench._matrix_speedups(bench._backend_matrix_sweep())
        assert "low_run" in measured, measured
        for metric in ("nonempty", "first"):
            floor = committed[metric] * (1.0 - TOLERANCE)
            assert measured["low_run"][metric] >= floor, (
                f"{metric}: measured {measured['low_run'][metric]}x, "
                f"committed {committed[metric]}x, budget floor {floor:.2f}x "
                f"(tolerance {TOLERANCE:.0%}) — the vectorized backend "
                "regressed (or the baseline needs regenerating: "
                "PYTHONPATH=src python -m pytest "
                "benchmarks/bench_e16_kernel_prefilter.py -o "
                "python_files='bench_*.py' -o python_functions='bench_*' "
                "--benchmark-disable)"
            )


class TestCommittedRuntimeBaseline:
    """``BENCH_runtime.json`` (E14): streaming/first-match acceptance bars."""

    def test_schema_and_sections(self):
        sections = _committed("BENCH_runtime.json", "e14_streaming_runtime")[
            "sections"
        ]
        for name in ("density_sweep", "first_match", "parallel_scaling"):
            assert sections[name]["rows"], name

    def test_lazy_first_match_acceptance_bar_holds(self):
        rows = _committed("BENCH_runtime.json", "e14_streaming_runtime")[
            "sections"
        ]["first_match"]["rows"]
        deepest = max(rows, key=lambda r: r["length"])
        assert deepest["length"] >= 10_000, deepest
        assert deepest["speedup_vs_eager"] >= 2.0, deepest

    def test_nonempty_never_costs_a_full_enumeration(self):
        rows = _committed("BENCH_runtime.json", "e14_streaming_runtime")[
            "sections"
        ]["density_sweep"]["rows"]
        densest = max(rows, key=lambda r: r["density"])
        assert densest["nonempty_ms"] <= densest["full_ms"] * 1.5, densest


class TestCommittedOptimizerBaseline:
    """``BENCH_optimizer.json`` (E15): rewrite-payoff acceptance bars."""

    def test_union_cse_shrinks_states_and_pays_off(self):
        rows = _committed("BENCH_optimizer.json", "e15_optimizer")["sections"][
            "deep_union_cse"
        ]
        for row in rows:
            assert row["states_after"] < row["states_before"], row
        deepest = max(rows, key=lambda r: r["size"])
        assert deepest["total_ms_on"] < deepest["total_ms_off"], deepest
        assert deepest["speedup"] >= 2.0, deepest

    def test_join_pushdown_compiles_faster(self):
        rows = _committed("BENCH_optimizer.json", "e15_optimizer")["sections"][
            "join_pushdown"
        ]
        for row in rows:
            assert row["states_after"] <= row["states_before"], row
            assert "push-project-join" in row["rules_fired"], row
        widest = max(rows, key=lambda r: r["size"])
        assert widest["compile_ms_on"] * 2.0 <= widest["compile_ms_off"], widest


class TestCommittedCorpusBaseline:
    """``BENCH_corpus.json`` (E17): index-vs-walk acceptance bars."""

    def test_schema_and_sections(self):
        data = _committed("BENCH_corpus.json", "e17_corpus_store")
        sections = data["sections"]
        assert sections["index_vs_walk"]["rows"]
        assert sections["ingest"]["docs"] >= 1000
        assert sections["maintenance"]["rebuild_verify_ms"] > 0

    def test_index_speedup_acceptance_bar_holds(self):
        section = _committed("BENCH_corpus.json", "e17_corpus_store")[
            "sections"
        ]["index_vs_walk"]
        sparsest = min(
            section["rows"], key=lambda r: r["matching_fraction"]
        )
        # The tentpole bar: ≥5x for warm-store index-driven evaluate_many
        # over the list walk at 1% selectivity on a ≥1000-document corpus.
        assert sparsest["matching_fraction"] <= 0.01, sparsest
        assert sparsest["docs"] >= 1000, sparsest
        assert sparsest["speedup_warm"] >= 5.0, sparsest

    def test_index_prunes_to_candidate_scale(self):
        section = _committed("BENCH_corpus.json", "e17_corpus_store")[
            "sections"
        ]["index_vs_walk"]
        for row in section["rows"]:
            assert (
                row["candidates_per_query"] <= row["matching_docs"] + 1
            ), row
            assert row["hydrations_per_query"] <= row["docs"], row


class TestCommittedIncrementalBaseline:
    """``BENCH_incremental.json`` (E18): tail-session acceptance bars."""

    def test_schema_and_sections(self):
        data = _committed("BENCH_incremental.json", "e18_incremental")
        sections = data["sections"]
        assert sections["quiet"]["rows"]
        assert sections["dense"]["rows"]

    def test_quiet_tail_speedup_acceptance_bar_holds(self):
        rows = _committed("BENCH_incremental.json", "e18_incremental")[
            "sections"
        ]["quiet"]["rows"]
        # The tentpole bar: 100-letter appends to a >=50k-letter quiet
        # document re-evaluate >=5x faster than a full rebuild.
        big = max(rows, key=lambda r: r["doc_letters"])
        assert big["doc_letters"] >= 50_000, rows
        assert big["append_letters"] == 100, rows
        assert big["speedup"] >= 5.0, big
        for row in rows:
            assert row["matches"] == 0, row
            assert row["reused_layers"] > 0, row

    def test_dense_tail_is_reported(self):
        rows = _committed("BENCH_incremental.json", "e18_incremental")[
            "sections"
        ]["dense"]["rows"]
        assert rows[0]["matches"] > 0, rows
