"""Cross-representation integration: regex → VA → compilations → results,
checked against every baseline the library has."""

import random

import pytest

from repro import compile_spanner
from repro.regex import ReferenceRegexSpanner, parse
from repro.regex.transform import to_disjunctive_functional
from repro.va import (
    evaluate_naive,
    evaluate_va,
    regex_to_va,
    to_disjunctive_functional_va,
    trim,
)
from repro.algebra import (
    JoinSpanner,
    adhoc_difference,
    dfunc_join,
    fpt_join,
    synchronized_difference,
)
from repro.workloads import random_sequential_formula, synchronized_block_formula


class TestFourWayAgreement:
    """Reference semantics ≡ naive VA ≡ poly-delay VA ≡ dfunc translations."""

    @pytest.mark.parametrize("seed", range(6))
    def test_all_evaluators_agree(self, seed):
        rng = random.Random(seed)
        formula = random_sequential_formula(rng.randint(0, 3), rng, depth=3)
        va = trim(regex_to_va(formula))
        dfunc_regex = to_disjunctive_functional(formula)
        dfunc_va = to_disjunctive_functional_va(va)
        for _ in range(3):
            doc = "".join(rng.choice("ab") for _ in range(rng.randint(0, 5)))
            reference = ReferenceRegexSpanner(formula).evaluate(doc)
            assert evaluate_naive(va, doc) == reference
            assert evaluate_va(va, doc) == reference
            assert ReferenceRegexSpanner(dfunc_regex).evaluate(doc) == reference
            assert evaluate_va(dfunc_va, doc) == reference


class TestJoinPaths:
    """fpt_join ≡ dfunc_join ≡ materialised join."""

    @pytest.mark.parametrize("seed", range(4))
    def test_join_paths_agree(self, seed):
        rng = random.Random(100 + seed)
        f1 = random_sequential_formula(rng.randint(0, 2), rng, depth=2)
        f2 = random_sequential_formula(rng.randint(0, 2), rng, depth=2)
        a1, a2 = trim(regex_to_va(f1)), trim(regex_to_va(f2))
        doc = "".join(rng.choice("ab") for _ in range(rng.randint(1, 4)))
        baseline = JoinSpanner(
            compile_spanner(a1), compile_spanner(a2)
        ).evaluate(doc)
        assert evaluate_va(fpt_join(a1, a2), doc) == baseline
        assert evaluate_va(dfunc_join(a1, a2), doc) == baseline


class TestDifferencePaths:
    """adhoc_difference ≡ synchronized_difference ≡ materialised, where
    both apply."""

    def test_difference_paths_agree(self):
        rng = random.Random(77)
        subtrahend_formula = synchronized_block_formula(1, alphabet="ab")
        a2 = trim(regex_to_va(subtrahend_formula))
        for _ in range(5):
            f1 = random_sequential_formula(1, rng, alphabet="ab", depth=2)
            from repro.va import rename_variables

            a1 = trim(regex_to_va(f1))
            if a1.variables:
                a1 = rename_variables(a1, {sorted(a1.variables)[0]: "x1"})
            doc = "".join(rng.choice("ab") for _ in range(rng.randint(1, 4)))
            baseline = compile_spanner(a1).evaluate(doc).difference(
                compile_spanner(a2).evaluate(doc)
            )
            assert evaluate_va(adhoc_difference(a1, a2, doc), doc) == baseline
            assert evaluate_va(synchronized_difference(a1, a2, doc), doc) == baseline


class TestTextualPipeline:
    def test_captures_under_star_rejected(self):
        # (…{…})+ repeats captures — not sequential, no delay guarantee.
        from repro.core import NotSequentialError

        with pytest.raises(NotSequentialError):
            compile_spanner("(user{[a-z]+}@host{[a-z.]+} ?)+")

    def test_parse_compile_evaluate(self):
        # One pair per mapping, anywhere in the document.
        spanner = compile_spanner(
            "([a-z@. ]*[ ]|ε)user{[a-z]+}@host{[a-z.]+}([ ][a-z@. ]*|ε)"
        )
        doc = "ab@cd.e fg@hi.j"
        rel = spanner.evaluate(doc)
        assert all(mu.domain == {"user", "host"} for mu in rel)
        users = {doc[mu["user"].begin - 1 : mu["user"].end - 1] for mu in rel}
        assert {"ab", "fg"} <= users

    def test_quickstart_snippet(self):
        spanner = compile_spanner("(xfirst{[A-Z][a-z]*} |ε)xlast{[A-Z][a-z]*}")
        results = list(spanner.enumerate("Ada Lovelace"))
        assert len(results) == 1
        assert results[0].domain == {"xfirst", "xlast"}
