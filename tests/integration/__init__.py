"""Test package."""
