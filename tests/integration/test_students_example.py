"""F1/F2 end-to-end: the paper's running example through the whole stack
(Figure 1 → Example 2.4's difference → Figure 2's RA tree)."""

import random

from repro import compile_spanner
from repro.core import Document
from repro.va import evaluate_va, regex_to_va, trim
from repro.algebra import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    Project,
    RAQuery,
    SentimentSpanner,
    adhoc_difference,
    semantic_difference,
)
from repro.workloads import (
    STUDENTS_DOCUMENT,
    alpha_info,
    alpha_recommendation,
    alpha_student_mail,
    alpha_student_phone,
    alpha_uk_mail,
    generate_students,
)


class TestExample24Difference:
    def test_uk_students_filtered_out(self):
        # ⟦αinfo \ αUKm⟧(dStudents) = {µ1, µ2}: Luzhin (edu.uk) drops out.
        a_info = trim(regex_to_va(alpha_info()))
        a_uk = trim(regex_to_va(alpha_uk_mail()))
        compiled = adhoc_difference(a_info, a_uk, STUDENTS_DOCUMENT)
        result = evaluate_va(compiled, STUDENTS_DOCUMENT)
        expected = semantic_difference(
            evaluate_va(a_info, STUDENTS_DOCUMENT),
            evaluate_va(a_uk, STUDENTS_DOCUMENT),
        )
        assert result == expected
        assert len(result) == 2
        names = {
            STUDENTS_DOCUMENT.substring(mu["xlast"]) for mu in result
        }
        assert names == {"Raskolnikov", "Zosimov"}


class TestFigure2Query:
    DOC = Document(
        "Pyotr Luzhin 6225545 luzi@edu.uk\n"
        "Zosimov 6222345 mov@edu.ru rec.good work\n"
        "Sofya Marmeladova 6200001 sm@edu.ru\n"
    )

    def build_query(self) -> RAQuery:
        tree = Project(
            Difference(Join(Leaf("sm"), Leaf("sp")), Leaf("nr")), "keep"
        )
        inst = Instantiation(
            spanners={
                "sm": alpha_student_mail(),
                "sp": alpha_student_phone(),
                "nr": alpha_recommendation(),
            },
            projections={"keep": frozenset({"xstdnt"})},
        )
        return RAQuery(tree, inst, PlannerConfig(max_shared=2))

    def test_students_without_recommendations(self):
        result = self.build_query().evaluate(self.DOC)
        names = {self.DOC.substring(mu["xstdnt"]) for mu in result}
        assert names == {"Pyotr", "Sofya"}

    def test_agrees_with_semantic_evaluation(self):
        doc = self.DOC
        sm = compile_spanner(alpha_student_mail()).evaluate(doc)
        sp = compile_spanner(alpha_student_phone()).evaluate(doc)
        nr = compile_spanner(alpha_recommendation()).evaluate(doc)
        expected = sm.join(sp).difference(nr).project({"xstdnt"})
        assert self.build_query().evaluate(doc) == expected

    def test_example_54_blackbox_substitution(self):
        # Replace αnr with the PosRec sentiment black box (Example 5.4).
        tree = Project(
            Difference(Join(Leaf("sm"), Leaf("sp")), Leaf("posrec")), "keep"
        )
        inst = Instantiation(
            spanners={
                "sm": alpha_student_mail(),
                "sp": alpha_student_phone(),
                "posrec": SentimentSpanner("xstdnt", "xposrec", lexicon={"good"}),
            },
            projections={"keep": frozenset({"xstdnt"})},
        )
        query = RAQuery(tree, inst, PlannerConfig(max_shared=2))
        result = query.evaluate(self.DOC)
        names = {self.DOC.substring(mu["xstdnt"]) for mu in result}
        # Zosimov has the positive "good" recommendation and drops out.
        assert names == {"Pyotr", "Sofya"}


class TestScaledCorpus:
    def test_query_on_generated_corpus_matches_semantics(self):
        rng = random.Random(12)
        doc = generate_students(12, rng, with_recommendation=0.4)
        tree = Difference(Leaf("sm"), Leaf("nr"))
        inst = Instantiation(
            spanners={"sm": alpha_student_mail(), "nr": alpha_recommendation()}
        )
        query = RAQuery(tree, inst, PlannerConfig(max_shared=2))
        sm = compile_spanner(alpha_student_mail()).evaluate(doc)
        nr = compile_spanner(alpha_recommendation()).evaluate(doc)
        assert query.evaluate(doc) == sm.difference(nr)
