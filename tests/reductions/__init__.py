"""Test package."""
