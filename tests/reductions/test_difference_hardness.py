"""Theorem 4.1's reduction: SAT ⟺ nonempty difference of functional
regexes."""

import random

from repro.core import Span
from repro.reductions import (
    PAPER_PHI,
    build_difference_instance,
    is_satisfiable,
    random_3cnf,
)
from repro.regex import is_functional
from repro.va import evaluate_va, regex_to_va, trim
from repro.algebra import adhoc_difference, semantic_difference


def relation(instance, formula):
    return evaluate_va(trim(regex_to_va(formula)), instance.document)


class TestConstruction:
    def test_formulas_are_functional_with_same_variables(self):
        instance = build_difference_instance(PAPER_PHI)
        assert is_functional(instance.gamma1)
        assert is_functional(instance.gamma2)
        assert instance.gamma1.variables == instance.gamma2.variables

    def test_document_is_a_power(self):
        assert build_difference_instance(PAPER_PHI).document.text == "aaa"

    def test_gamma1_enumerates_assignments(self):
        instance = build_difference_instance(PAPER_PHI)
        assert len(relation(instance, instance.gamma1)) == 2 ** PAPER_PHI.n_vars

    def test_gamma2_enumerates_violations(self):
        instance = build_difference_instance(PAPER_PHI)
        rel2 = relation(instance, instance.gamma2)
        # γ2's mappings are exactly the assignments violating some clause.
        for mapping in rel2:
            assert not PAPER_PHI.evaluate(instance.decode(mapping))

    def test_encode_decode_roundtrip(self):
        instance = build_difference_instance(PAPER_PHI)
        assignment = {1: True, 2: False, 3: True}
        assert instance.decode(instance.encode(assignment)) == assignment

    def test_paper_worked_example(self):
        # The proof's example: τ(x)=τ(y)=t, τ(z)=f corresponds to
        # µ(x)=[1,2>, µ(y)=[2,3>, µ(z)=[3,3> and survives the difference.
        instance = build_difference_instance(PAPER_PHI)
        survivor = instance.encode({1: True, 2: True, 3: False})
        assert survivor["x1"] == Span(1, 2)
        assert survivor["x3"] == Span(3, 3)
        difference = semantic_difference(
            relation(instance, instance.gamma1), relation(instance, instance.gamma2)
        )
        assert survivor in difference


class TestReductionCorrectness:
    def test_randomized_equivalence_with_dpll(self):
        rng = random.Random(23)
        for _ in range(12):
            cnf = random_3cnf(4, rng.randint(2, 8), rng)
            instance = build_difference_instance(cnf)
            difference = semantic_difference(
                relation(instance, instance.gamma1),
                relation(instance, instance.gamma2),
            )
            assert (not difference.is_empty) == is_satisfiable(cnf), cnf
            for mapping in difference:
                assert cnf.evaluate(instance.decode(mapping))

    def test_survivors_are_exactly_the_models(self):
        instance = build_difference_instance(PAPER_PHI)
        difference = semantic_difference(
            relation(instance, instance.gamma1), relation(instance, instance.gamma2)
        )
        from repro.reductions import all_models

        models = {tuple(sorted(m.items())) for m in all_models(PAPER_PHI)}
        decoded = {
            tuple(sorted(instance.decode(mapping).items())) for mapping in difference
        }
        assert decoded == models

    def test_adhoc_difference_agrees_on_small_instance(self):
        # The common-variable count here equals n — outside Theorem 4.3's
        # bounded regime, but the ad-hoc compilation is still correct.
        cnf = random_3cnf(3, 2, random.Random(1))
        instance = build_difference_instance(cnf)
        a1 = trim(regex_to_va(instance.gamma1))
        a2 = trim(regex_to_va(instance.gamma2))
        compiled = adhoc_difference(a1, a2, instance.document)
        expected = semantic_difference(
            evaluate_va(a1, instance.document), evaluate_va(a2, instance.document)
        )
        assert evaluate_va(compiled, instance.document) == expected
