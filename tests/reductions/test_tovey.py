"""Prop. 4.10's reduction: Tovey-SAT ⟺ difference with disjunction-free
operand structure."""

import random

import pytest

from repro.reductions import (
    CNF,
    build_tovey_instance,
    is_satisfiable,
    random_tovey_cnf,
    to_tovey,
)
from repro.regex import disjuncts, is_disjunction_free, is_functional
from repro.va import evaluate_va, regex_to_va, trim
from repro.algebra import semantic_difference


def relation(instance, formula):
    return evaluate_va(trim(regex_to_va(formula)), instance.document)


def small_tovey(seed: int) -> CNF:
    return random_tovey_cnf(4, random.Random(seed))


class TestConstruction:
    def test_requires_tovey_form(self):
        not_tovey = CNF(1, ((1,),))
        with pytest.raises(ValueError):
            build_tovey_instance(not_tovey)

    def test_gamma1_functional_and_disjunction_free(self):
        instance = build_tovey_instance(small_tovey(0))
        assert is_functional(instance.gamma1)
        assert is_disjunction_free(instance.gamma1)

    def test_gamma2_disjuncts_are_disjunction_free(self):
        instance = build_tovey_instance(small_tovey(0))
        for disjunct in disjuncts(instance.gamma2):
            assert is_disjunction_free(disjunct)

    def test_each_variable_in_at_most_three_disjuncts(self):
        instance = build_tovey_instance(small_tovey(1))
        counts: dict[str, int] = {}
        for disjunct in disjuncts(instance.gamma2):
            for var in disjunct.variables:
                counts[var] = counts.get(var, 0) + 1
        assert all(count <= 3 for count in counts.values())

    def test_document_shape(self):
        cnf = small_tovey(2)
        instance = build_tovey_instance(cnf)
        assert instance.document.text == "bab" * cnf.n_vars

    def test_encode_decode_roundtrip(self):
        cnf = small_tovey(3)
        instance = build_tovey_instance(cnf)
        assignment = {v: bool(v % 2) for v in range(1, cnf.n_vars + 1)}
        assert instance.decode(instance.encode(assignment)) == assignment


class TestReductionCorrectness:
    def test_randomized_equivalence_with_dpll(self):
        rng = random.Random(41)
        for _ in range(10):
            cnf = random_tovey_cnf(4, rng)
            instance = build_tovey_instance(cnf)
            difference = semantic_difference(
                relation(instance, instance.gamma1),
                relation(instance, instance.gamma2),
            )
            assert (not difference.is_empty) == is_satisfiable(cnf), cnf
            for mapping in difference:
                assert cnf.evaluate(instance.decode(mapping))

    def test_composes_with_to_tovey(self):
        # General 3CNF → Tovey form → Prop.-4.10 instance.
        from repro.reductions import random_3cnf

        cnf = random_3cnf(3, 5, random.Random(7))
        tovey = to_tovey(cnf)
        instance = build_tovey_instance(tovey)
        difference = semantic_difference(
            relation(instance, instance.gamma1), relation(instance, instance.gamma2)
        )
        assert (not difference.is_empty) == is_satisfiable(cnf)
