"""CNF machinery and solvers."""

import random

import pytest

from repro.reductions import (
    CNF,
    PAPER_PHI,
    all_models,
    dpll_satisfiable,
    is_satisfiable,
    pigeonhole_cnf,
    random_3cnf,
    random_tovey_cnf,
    to_tovey,
    weighted_satisfiable,
)


class TestCNF:
    def test_evaluate(self):
        assert PAPER_PHI.evaluate({1: False, 2: True, 3: True})
        assert not PAPER_PHI.evaluate({1: True, 2: False, 3: True})

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF(2, ((1, 3),))
        with pytest.raises(ValueError):
            CNF(2, ((0,),))

    def test_str_rendering(self):
        assert "¬x1" in str(CNF(1, ((-1,),)))

    def test_variable_occurrences(self):
        cnf = CNF(3, ((1, 2), (-1, 3)))
        assert cnf.variable_occurrences() == {1: 2, 2: 1, 3: 1}

    def test_tovey_form_check(self):
        assert CNF(3, ((1, 2), (-1, 3), (2, 3))).is_tovey_form()
        assert not CNF(3, ((1, 2, 3), (1, 2), (1, 3), (-1, 2))).is_tovey_form()  # x1 × 4
        assert not CNF(1, ((1,),)).is_tovey_form()  # unit clause


class TestSolvers:
    def test_dpll_on_paper_phi(self):
        model = dpll_satisfiable(PAPER_PHI)
        assert model is not None and PAPER_PHI.evaluate(model)

    def test_dpll_detects_unsat(self):
        unsat = CNF(1, ((1,), (-1,)))
        assert dpll_satisfiable(unsat) is None

    def test_dpll_agrees_with_brute_force(self):
        rng = random.Random(11)
        for _ in range(30):
            cnf = random_3cnf(5, rng.randint(3, 20), rng)
            brute = any(True for _ in all_models(cnf))
            assert is_satisfiable(cnf) == brute, cnf

    def test_pigeonhole_is_unsat(self):
        assert not is_satisfiable(pigeonhole_cnf(2))
        assert not is_satisfiable(pigeonhole_cnf(3))

    def test_all_models_are_models(self):
        for model in all_models(PAPER_PHI):
            assert PAPER_PHI.evaluate(model)

    def test_weighted_satisfiable(self):
        cnf = CNF(3, ((1, 2),))  # needs at least one of x1/x2 true
        assert weighted_satisfiable(cnf, 0) is None
        model = weighted_satisfiable(cnf, 1)
        assert model is not None and sum(model.values()) == 1

    def test_weighted_exactness(self):
        cnf = CNF(2, ((-1,), (-2,)))  # both must be false
        assert weighted_satisfiable(cnf, 0) is not None
        assert weighted_satisfiable(cnf, 1) is None


class TestGenerators:
    def test_random_3cnf_shape(self):
        rng = random.Random(0)
        cnf = random_3cnf(6, 10, rng)
        assert cnf.n_clauses == 10
        assert all(len(c) == 3 for c in cnf.clauses)
        assert all(len({abs(l) for l in c}) == 3 for c in cnf.clauses)

    def test_random_3cnf_needs_three_vars(self):
        with pytest.raises(ValueError):
            random_3cnf(2, 1, random.Random(0))

    def test_random_tovey_is_tovey(self):
        rng = random.Random(3)
        for _ in range(10):
            assert random_tovey_cnf(6, rng).is_tovey_form()

    def test_to_tovey_preserves_satisfiability(self):
        rng = random.Random(9)
        for _ in range(15):
            cnf = random_3cnf(4, rng.randint(4, 10), rng)
            converted = to_tovey(cnf)
            assert all(
                count <= 3 for count in converted.variable_occurrences().values()
            )
            assert is_satisfiable(cnf) == is_satisfiable(converted), cnf
