"""Theorem 3.1's reduction: SAT ⟺ nonempty join of sequential regexes."""

import random

from repro.reductions import PAPER_PHI, build_join_instance, is_satisfiable, random_3cnf
from repro.regex import is_functional, is_sequential
from repro.va import evaluate_va, regex_to_va, trim
from repro.algebra import fpt_join, semantic_join


def relation(instance, formula):
    return evaluate_va(trim(regex_to_va(formula)), instance.document)


class TestConstruction:
    def test_formulas_are_sequential_not_functional(self):
        instance = build_join_instance(PAPER_PHI)
        assert is_sequential(instance.gamma1) and is_sequential(instance.gamma2)
        assert not is_functional(instance.gamma1)
        assert not is_functional(instance.gamma2)

    def test_document_is_single_letter(self):
        assert build_join_instance(PAPER_PHI).document.text == "a"

    def test_capture_variable_count(self):
        # 2m capture variables per SAT variable.
        instance = build_join_instance(PAPER_PHI)
        assert len(instance.gamma1.variables) == 2 * PAPER_PHI.n_vars * PAPER_PHI.n_clauses

    def test_gamma1_enumerates_polarity_choices(self):
        instance = build_join_instance(PAPER_PHI)
        rel = relation(instance, instance.gamma1)
        assert len(rel) == 2 ** PAPER_PHI.n_vars

    def test_gamma2_enumerates_literal_picks(self):
        instance = build_join_instance(PAPER_PHI)
        rel = relation(instance, instance.gamma2)
        assert len(rel) == 3 ** PAPER_PHI.n_clauses


class TestReductionCorrectness:
    def test_paper_phi_is_satisfiable_and_join_nonempty(self):
        instance = build_join_instance(PAPER_PHI)
        joined = semantic_join(
            relation(instance, instance.gamma1), relation(instance, instance.gamma2)
        )
        assert not joined.is_empty
        for mapping in joined:
            assert PAPER_PHI.evaluate(instance.decode(mapping))

    def test_randomized_equivalence_with_dpll(self):
        rng = random.Random(17)
        for _ in range(12):
            cnf = random_3cnf(4, rng.randint(2, 8), rng)
            instance = build_join_instance(cnf)
            joined = semantic_join(
                relation(instance, instance.gamma1),
                relation(instance, instance.gamma2),
            )
            assert (not joined.is_empty) == is_satisfiable(cnf), cnf
            for mapping in joined:
                assert cnf.evaluate(instance.decode(mapping)), (cnf, mapping)

    def test_fpt_join_would_be_exponential_here(self):
        # The instance shares *all* capture variables — exactly the regime
        # Theorem 3.1 proves hard and Lemma 3.2 excludes by its 4^k cost.
        instance = build_join_instance(random_3cnf(3, 2, random.Random(0)))
        a1 = trim(regex_to_va(instance.gamma1))
        a2 = trim(regex_to_va(instance.gamma2))
        shared = a1.variables & a2.variables
        assert len(shared) >= instance.cnf.n_clauses  # unbounded with the formula

    def test_fpt_join_still_correct_on_tiny_instance(self):
        # For a 1-clause formula the shared set is small enough to compile.
        cnf = random_3cnf(3, 1, random.Random(2))
        instance = build_join_instance(cnf)
        a1 = trim(regex_to_va(instance.gamma1))
        a2 = trim(regex_to_va(instance.gamma2))
        joined = fpt_join(a1, a2)
        expected = semantic_join(
            evaluate_va(a1, instance.document), evaluate_va(a2, instance.document)
        )
        assert evaluate_va(joined, instance.document) == expected
