"""Theorem 4.4's reduction: weight-k SAT ⟺ difference nonemptiness with k
common variables."""

import random

from repro.reductions import (
    CNF,
    build_w1_instance,
    codeword,
    codeword_width,
    random_3cnf,
    weighted_satisfiable,
)
from repro.regex import is_functional
from repro.va import evaluate_va, regex_to_va, trim
from repro.algebra import semantic_difference


def relation(instance, formula):
    return evaluate_va(trim(regex_to_va(formula)), instance.document)


class TestCodewords:
    def test_codewords_are_distinct_and_fixed_width(self):
        width = codeword_width(6)
        words = [codeword(i, width) for i in range(1, 7)]
        assert len(set(words)) == 6
        assert all(len(w) == width for w in words)

    def test_codeword_alphabet(self):
        assert set(codeword(3, 4)) <= {"a", "b"}

    def test_width_is_logarithmic(self):
        assert codeword_width(2) == 1
        assert codeword_width(5) == 3
        assert codeword_width(1024) == 10


class TestConstruction:
    def test_shared_variables_are_exactly_k(self):
        cnf = random_3cnf(4, 3, random.Random(0))
        instance = build_w1_instance(cnf, 2)
        shared = instance.gamma1.variables & instance.gamma2.variables
        assert shared == {"y1", "y2"} == instance.shared_variables

    def test_formulas_functional(self):
        cnf = random_3cnf(4, 3, random.Random(0))
        instance = build_w1_instance(cnf, 2)
        assert is_functional(instance.gamma1)
        assert is_functional(instance.gamma2)

    def test_gamma1_counts_weight_k_selections(self):
        from math import comb

        cnf = random_3cnf(4, 2, random.Random(1))
        instance = build_w1_instance(cnf, 2)
        assert len(relation(instance, instance.gamma1)) == comb(4, 2)


class TestReductionCorrectness:
    def test_randomized_equivalence(self):
        rng = random.Random(31)
        for _ in range(8):
            cnf = random_3cnf(4, rng.randint(1, 4), rng)
            for weight in (1, 2, 3):
                instance = build_w1_instance(cnf, weight)
                difference = semantic_difference(
                    relation(instance, instance.gamma1),
                    relation(instance, instance.gamma2),
                )
                expected = weighted_satisfiable(cnf, weight) is not None
                assert (not difference.is_empty) == expected, (cnf, weight)
                for mapping in difference:
                    model = instance.decode(mapping)
                    assert cnf.evaluate(model)
                    assert sum(model.values()) == weight

    def test_all_negative_clause(self):
        # ¬x1 ∨ ¬x2 ∨ ¬x3 with weight 3 is unsatisfiable, weight 2 is fine.
        cnf = CNF(3, ((-1, -2, -3),))
        hard = build_w1_instance(cnf, 3)
        easy = build_w1_instance(cnf, 2)
        assert semantic_difference(
            relation(hard, hard.gamma1), relation(hard, hard.gamma2)
        ).is_empty
        assert not semantic_difference(
            relation(easy, easy.gamma1), relation(easy, easy.gamma2)
        ).is_empty

    def test_weight_larger_than_negatives_allows_violation_pins(self):
        # A clause with one negated variable: the pinned-slot disjuncts.
        cnf = CNF(3, ((-1, 2, 3),))
        instance = build_w1_instance(cnf, 1)
        # weight-1 models: {x1} violates, {x2}/{x3} satisfy.
        difference = semantic_difference(
            relation(instance, instance.gamma1), relation(instance, instance.gamma2)
        )
        decoded = {frozenset(v for v, b in instance.decode(m).items() if b) for m in difference}
        assert decoded == {frozenset({2}), frozenset({3})}
