"""The Spanner ABC and its generic adapters."""

from repro.core import (
    ConstantSpanner,
    Mapping,
    RelationSpanner,
    Span,
    SpanRelation,
)


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


class TestRelationSpanner:
    def test_enumerate_deduplicates(self):
        spanner = RelationSpanner(
            lambda doc: [m(x=(1, 2)), m(x=(1, 2)), m(x=(1, 1))],
            variables={"x"},
        )
        assert len(list(spanner.enumerate("ab"))) == 2

    def test_evaluate_materialises(self):
        spanner = RelationSpanner(lambda doc: [m(x=(1, 2))], variables={"x"})
        assert spanner.evaluate("ab") == SpanRelation([m(x=(1, 2))])

    def test_is_nonempty_short_circuits(self):
        calls = []

        def source(doc):
            calls.append(doc)
            yield m(x=(1, 2))
            raise AssertionError("should not be drained past the first result")

        spanner = RelationSpanner(source, variables={"x"})
        assert spanner.is_nonempty("ab")

    def test_default_degree_is_variable_count(self):
        spanner = RelationSpanner(lambda doc: [], variables={"x", "y", "z"})
        assert spanner.degree() == 3

    def test_function_receives_document_object(self):
        seen = []
        spanner = RelationSpanner(lambda doc: seen.append(doc) or [], variables=set())
        spanner.evaluate("abc")
        assert seen[0].text == "abc"


class TestConstantSpanner:
    def test_returns_fixed_relation(self):
        rel = SpanRelation([m(x=(1, 2))])
        spanner = ConstantSpanner(rel)
        assert spanner.evaluate("anything") == rel
        assert spanner.variables() == {"x"}

    def test_empty_constant(self):
        spanner = ConstantSpanner(SpanRelation())
        assert not spanner.is_nonempty("doc")
