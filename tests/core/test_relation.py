"""Span relations and the semantic algebra of §2.4."""

from repro.core import Document, EMPTY_RELATION, Mapping, Span, SpanRelation


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


class TestContainer:
    def test_set_semantics(self):
        rel = SpanRelation([m(x=(1, 2)), m(x=(1, 2)), m(y=(2, 3))])
        assert len(rel) == 2
        assert m(x=(1, 2)) in rel

    def test_empty(self):
        assert EMPTY_RELATION.is_empty
        assert len(EMPTY_RELATION) == 0

    def test_variables_union_of_domains(self):
        rel = SpanRelation([m(x=(1, 2)), m(y=(2, 3))])
        assert rel.variables() == {"x", "y"}

    def test_equality_with_frozenset(self):
        rel = SpanRelation([m(x=(1, 2))])
        assert rel == {m(x=(1, 2))}

    def test_iteration_is_deterministic(self):
        rel = SpanRelation([m(x=(i, i + 1)) for i in range(1, 6)])
        assert list(rel) == list(rel)


class TestUnionAndProjection:
    def test_union(self):
        left = SpanRelation([m(x=(1, 2))])
        right = SpanRelation([m(y=(2, 3))])
        assert left.union(right) == SpanRelation([m(x=(1, 2)), m(y=(2, 3))])

    def test_projection_restricts_domains(self):
        rel = SpanRelation([m(x=(1, 2), y=(3, 4))])
        assert rel.project({"x"}) == SpanRelation([m(x=(1, 2))])

    def test_projection_collapses_duplicates(self):
        rel = SpanRelation([m(x=(1, 2), y=(3, 4)), m(x=(1, 2), y=(5, 6))])
        assert len(rel.project({"x"})) == 1

    def test_projection_can_produce_empty_mapping(self):
        rel = SpanRelation([m(x=(1, 2))])
        assert rel.project({"z"}) == SpanRelation([Mapping()])


class TestJoin:
    def test_join_on_agreeing_variable(self):
        left = SpanRelation([m(x=(1, 2), y=(2, 3))])
        right = SpanRelation([m(x=(1, 2), z=(4, 4))])
        assert left.join(right) == SpanRelation([m(x=(1, 2), y=(2, 3), z=(4, 4))])

    def test_join_drops_disagreeing(self):
        left = SpanRelation([m(x=(1, 2))])
        right = SpanRelation([m(x=(2, 3))])
        assert left.join(right).is_empty

    def test_schemaless_join_with_partial_domains(self):
        # A mapping lacking the shared variable joins with everything.
        left = SpanRelation([m(x=(1, 2)), Mapping()])
        right = SpanRelation([m(x=(9, 9))])
        joined = left.join(right)
        assert joined == SpanRelation([m(x=(9, 9))])

    def test_join_with_empty_relation(self):
        assert SpanRelation([m(x=(1, 2))]).join(EMPTY_RELATION).is_empty


class TestDifference:
    def test_difference_is_not_set_difference(self):
        # A compatible (not equal!) subtrahend mapping kills the minuend.
        left = SpanRelation([m(x=(1, 2), y=(3, 4))])
        right = SpanRelation([m(x=(1, 2))])
        assert left.difference(right).is_empty

    def test_incompatible_survives(self):
        left = SpanRelation([m(x=(1, 2))])
        right = SpanRelation([m(x=(2, 3))])
        assert left.difference(right) == left

    def test_empty_mapping_in_subtrahend_kills_everything(self):
        left = SpanRelation([m(x=(1, 2)), m(y=(5, 6))])
        right = SpanRelation([Mapping()])
        assert left.difference(right).is_empty

    def test_difference_with_empty_subtrahend(self):
        left = SpanRelation([m(x=(1, 2))])
        assert left.difference(EMPTY_RELATION) == left


class TestUtilities:
    def test_select(self):
        rel = SpanRelation([m(x=(1, 2)), m(x=(3, 4))])
        assert rel.select(lambda mu: mu["x"].begin == 1) == SpanRelation([m(x=(1, 2))])

    def test_rename(self):
        rel = SpanRelation([m(x=(1, 2))])
        assert rel.rename({"x": "z"}) == SpanRelation([m(z=(1, 2))])

    def test_to_table_marks_undefined_cells(self):
        rel = SpanRelation([m(x=(1, 2)), m(y=(2, 3))])
        table = rel.to_table()
        assert "x" in table and "y" in table
        # one row has an empty x cell, the other an empty y cell
        assert table.count("[1, 2>") == 1

    def test_to_table_with_document_shows_content(self):
        doc = Document("ab")
        rel = SpanRelation([m(x=(1, 3))])
        assert "'ab'" in rel.to_table(doc)
