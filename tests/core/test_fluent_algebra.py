"""The fluent operator API on Spanner (semantic combinators)."""

from repro import compile_spanner
from repro.core import Mapping, Span


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


A = compile_spanner("x{a}[ab]*")
B = compile_spanner("[ab]*y{b}")
C = compile_spanner("x{[ab]}[ab]*")


class TestFluentOperators:
    def test_join_method_and_operator_agree(self):
        doc = "ab"
        assert A.join(B).evaluate(doc) == (A & B).evaluate(doc)
        assert (A & B).evaluate(doc) == A.evaluate(doc).join(B.evaluate(doc))

    def test_union_method_and_operator_agree(self):
        doc = "ba"
        assert A.union(C).evaluate(doc) == (A | C).evaluate(doc)
        assert (A | C).evaluate(doc) == A.evaluate(doc).union(C.evaluate(doc))

    def test_minus_method_and_operator_agree(self):
        doc = "ab"
        assert C.minus(A).evaluate(doc) == (C - A).evaluate(doc)
        assert (C - A).evaluate(doc) == C.evaluate(doc).difference(A.evaluate(doc))

    def test_project(self):
        doc = "ab"
        assert (A & B).project({"x"}).evaluate(doc) == (
            (A & B).evaluate(doc).project({"x"})
        )

    def test_chained_expression(self):
        doc = "ab"
        query = ((A & B) - C).project({"y"})
        expected = (
            A.evaluate(doc)
            .join(B.evaluate(doc))
            .difference(C.evaluate(doc))
            .project({"y"})
        )
        assert query.evaluate(doc) == expected

    def test_enumeration_streams(self):
        doc = "ab"
        assert set((A & B).enumerate(doc)) == set((A & B).evaluate(doc))
