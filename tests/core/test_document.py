"""Documents: 1-based, span-addressed strings (§2.1)."""

import pytest

from repro.core import Alphabet, Document, Span, SpanError, as_document
from repro.core.document import _ENCODING_CACHE_LIMIT


class TestBasics:
    def test_length(self):
        assert len(Document("hello")) == 5
        assert len(Document("")) == 0

    def test_letter_is_one_based(self):
        doc = Document("abc")
        assert doc.letter(1) == "a"
        assert doc.letter(3) == "c"

    def test_letter_out_of_range(self):
        doc = Document("abc")
        with pytest.raises(SpanError):
            doc.letter(0)
        with pytest.raises(SpanError):
            doc.letter(4)

    def test_substring_matches_paper_convention(self):
        # d[i, j> denotes σ_i … σ_{j-1}.
        doc = Document("abcde")
        assert doc.substring(Span(2, 4)) == "bc"
        assert doc.substring(Span(1, 6)) == "abcde"
        assert doc.substring(Span(3, 3)) == ""

    def test_substring_out_of_range(self):
        with pytest.raises(SpanError):
            Document("ab").substring(Span(1, 4))

    def test_full_span(self):
        assert Document("abc").full_span() == Span(1, 4)
        assert Document("").full_span() == Span(1, 1)

    def test_alphabet(self):
        assert Document("abcabc").alphabet() == frozenset("abc")


class TestEquality:
    def test_equal_to_same_document(self):
        assert Document("ab") == Document("ab")
        assert Document("ab") != Document("ba")

    def test_equal_to_raw_string(self):
        assert Document("ab") == "ab"

    def test_hashable(self):
        assert len({Document("ab"), Document("ab")}) == 1

    def test_iteration(self):
        assert list(Document("abc")) == ["a", "b", "c"]


class TestCoercion:
    def test_as_document_passthrough(self):
        doc = Document("x")
        assert as_document(doc) is doc

    def test_as_document_from_string(self):
        assert as_document("xy") == Document("xy")

    def test_as_document_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_document(42)

    def test_spans_enumeration(self):
        doc = Document("ab")
        assert len(list(doc.spans())) == 6


class TestAlphabetInterning:
    def test_equal_letter_sets_share_one_instance(self):
        assert Alphabet.of("bca") is Alphabet.of(["a", "b", "c"])
        assert Alphabet.of("ab") is not Alphabet.of("abc")

    def test_ids_are_dense_and_sorted(self):
        alphabet = Alphabet.of("cab")
        assert alphabet.signature == ("a", "b", "c")
        assert [alphabet.id_of(ch) for ch in "abc"] == [0, 1, 2]
        assert alphabet.id_of("z") == -1
        assert "a" in alphabet and "z" not in alphabet
        assert len(alphabet) == 3

    def test_encode_marks_unknown_letters(self):
        assert Alphabet.of("ab").encode("abz") == (0, 1, -1)


class TestDocumentEncodingCache:
    def test_encoding_is_cached_per_alphabet(self):
        doc = Document("abab")
        alphabet = Alphabet.of("ab")
        first = doc.encoded(alphabet)
        assert first == (0, 1, 0, 1)
        assert doc.encoded(alphabet) is first  # served from the cache

    def test_distinct_alphabets_get_distinct_encodings(self):
        doc = Document("abc")
        small = Alphabet.of("ab")
        large = Alphabet.of("abc")
        assert doc.encoded(small) == (0, 1, -1)
        assert doc.encoded(large) == (0, 1, 2)
        # The first alphabet's entry is still intact (no cross-invalidation).
        assert doc.encoded(small) == (0, 1, -1)

    def test_cache_is_bounded(self):
        doc = Document("a")
        alphabets = [
            Alphabet.of("a" + chr(ord("b") + i)) for i in range(_ENCODING_CACHE_LIMIT + 3)
        ]
        encodings = [doc.encoded(alphabet) for alphabet in alphabets]
        assert len(doc._encodings) <= _ENCODING_CACHE_LIMIT + 1
        # Evicted entries are recomputed correctly on demand.
        assert doc.encoded(alphabets[0]) == encodings[0]

    def test_fresh_document_recomputes(self):
        alphabet = Alphabet.of("ab")
        a, b = Document("ab"), Document("ab")
        assert a.encoded(alphabet) == b.encoded(alphabet)
        assert a.encoded(alphabet) is not b.encoded(alphabet)


class TestCachedArtifacts:
    def test_letter_counts_is_read_only(self):
        counts = Document("abca").letter_counts()
        assert dict(counts) == {"a": 2, "b": 1, "c": 1}
        with pytest.raises(TypeError):
            counts["a"] = 99
        with pytest.raises(TypeError):
            del counts["a"]

    def test_letter_counts_view_is_cached(self):
        doc = Document("abca")
        assert doc.letter_counts() is doc.letter_counts()

    def test_runs_are_immutable(self):
        runs = Document("aabcc").runs()
        assert runs == (("a", 0, 2), ("b", 2, 1), ("c", 3, 2))
        assert isinstance(runs, tuple)

    def test_from_cached_seeds_the_artifact_caches(self):
        reference = Document("aabcc")
        doc = Document.from_cached(
            "aabcc",
            runs=reference.runs(),
            letter_counts=dict(reference.letter_counts()),
        )
        assert doc.runs() == reference.runs()
        assert dict(doc.letter_counts()) == dict(reference.letter_counts())
        with pytest.raises(TypeError):
            doc.letter_counts()["a"] = 0

    def test_from_cached_without_artifacts_computes_lazily(self):
        doc = Document.from_cached("ab")
        assert doc.runs() == (("a", 0, 1), ("b", 1, 1))
        assert dict(doc.letter_counts()) == {"a": 1, "b": 1}

    def test_append_extends_text_and_merges_runs(self):
        doc = Document("aab")
        grown = doc.append("bba")
        assert grown.text == "aabbba"
        assert grown.runs() == (("a", 0, 2), ("b", 2, 3), ("a", 5, 1))
        # The original stays immutable.
        assert doc.text == "aab"
        assert doc.runs() == (("a", 0, 2), ("b", 2, 1))

    def test_append_artifacts_match_fresh_document(self):
        for prefix, suffix in [
            ("", "abc"),
            ("abc", ""),
            ("aab", "bba"),
            ("ab", "cd"),
            ("aaa", "aaa"),
        ]:
            grown = Document(prefix).append(suffix)
            fresh = Document(prefix + suffix)
            assert grown.text == fresh.text
            assert grown.runs() == fresh.runs()
            assert dict(grown.letter_counts()) == dict(fresh.letter_counts())

    def test_append_extends_cached_encodings(self):
        alphabet = Alphabet.of("abc")
        doc = Document("aab")
        ids = doc.encoded(alphabet)
        grown = doc.append("bca")
        assert grown.encoded(alphabet) == ids + alphabet.encode("bca")
        assert grown.encoded(alphabet) == Document("aabbca").encoded(alphabet)

    def test_append_accepts_documents(self):
        grown = Document("ab").append(Document("ba"))
        assert grown.text == "abba"

    def test_empty_append_shares_cached_artifacts(self):
        doc = Document("aabcc")
        runs = doc.runs()
        grown = doc.append("")
        assert grown.runs() is runs

    def test_chained_appends(self):
        doc = Document("")
        for chunk in ("a", "ab", "", "bba", "c"):
            doc = doc.append(chunk)
        fresh = Document("aabbbac")
        assert doc.text == fresh.text
        assert doc.runs() == fresh.runs()
        assert dict(doc.letter_counts()) == dict(fresh.letter_counts())

    def test_documents_pickle_by_text(self):
        import pickle

        doc = Document("abca")
        doc.letter_counts()  # seed the (unpicklable) proxy cache
        doc.runs()
        restored = pickle.loads(pickle.dumps(doc))
        assert restored == doc
        assert dict(restored.letter_counts()) == {"a": 2, "b": 1, "c": 1}
