"""Documents: 1-based, span-addressed strings (§2.1)."""

import pytest

from repro.core import Document, Span, SpanError, as_document


class TestBasics:
    def test_length(self):
        assert len(Document("hello")) == 5
        assert len(Document("")) == 0

    def test_letter_is_one_based(self):
        doc = Document("abc")
        assert doc.letter(1) == "a"
        assert doc.letter(3) == "c"

    def test_letter_out_of_range(self):
        doc = Document("abc")
        with pytest.raises(SpanError):
            doc.letter(0)
        with pytest.raises(SpanError):
            doc.letter(4)

    def test_substring_matches_paper_convention(self):
        # d[i, j> denotes σ_i … σ_{j-1}.
        doc = Document("abcde")
        assert doc.substring(Span(2, 4)) == "bc"
        assert doc.substring(Span(1, 6)) == "abcde"
        assert doc.substring(Span(3, 3)) == ""

    def test_substring_out_of_range(self):
        with pytest.raises(SpanError):
            Document("ab").substring(Span(1, 4))

    def test_full_span(self):
        assert Document("abc").full_span() == Span(1, 4)
        assert Document("").full_span() == Span(1, 1)

    def test_alphabet(self):
        assert Document("abcabc").alphabet() == frozenset("abc")


class TestEquality:
    def test_equal_to_same_document(self):
        assert Document("ab") == Document("ab")
        assert Document("ab") != Document("ba")

    def test_equal_to_raw_string(self):
        assert Document("ab") == "ab"

    def test_hashable(self):
        assert len({Document("ab"), Document("ab")}) == 1

    def test_iteration(self):
        assert list(Document("abc")) == ["a", "b", "c"]


class TestCoercion:
    def test_as_document_passthrough(self):
        doc = Document("x")
        assert as_document(doc) is doc

    def test_as_document_from_string(self):
        assert as_document("xy") == Document("xy")

    def test_as_document_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_document(42)

    def test_spans_enumeration(self):
        doc = Document("ab")
        assert len(list(doc.spans())) == 6
