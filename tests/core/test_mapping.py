"""Mappings and SPARQL-style compatibility (§2.1, §2.4)."""

import pytest

from repro.core import EMPTY_MAPPING, Mapping, MappingError, Span, compatible, merge


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


class TestConstruction:
    def test_domain(self):
        mapping = m(x=(1, 2), y=(3, 3))
        assert mapping.domain == {"x", "y"}
        assert mapping["x"] == Span(1, 2)

    def test_empty_mapping(self):
        assert EMPTY_MAPPING.domain == frozenset()
        assert len(EMPTY_MAPPING) == 0

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            m(x=(1, 2))["y"]

    def test_get_default(self):
        assert m(x=(1, 2)).get("y") is None
        assert m(x=(1, 2)).get("x") == Span(1, 2)

    def test_rejects_non_span_values(self):
        with pytest.raises(MappingError):
            Mapping({"x": (1, 2)})

    def test_rejects_non_string_variables(self):
        with pytest.raises(MappingError):
            Mapping({3: Span(1, 2)})

    def test_value_equality_ignores_insertion_order(self):
        a = Mapping({"x": Span(1, 2), "y": Span(2, 3)})
        b = Mapping({"y": Span(2, 3), "x": Span(1, 2)})
        assert a == b and hash(a) == hash(b)

    def test_contains_and_iter(self):
        mapping = m(x=(1, 2), y=(3, 3))
        assert "x" in mapping and "z" not in mapping
        assert sorted(mapping) == ["x", "y"]


class TestCompatibility:
    def test_disjoint_domains_are_compatible(self):
        # The crux of the schemaless difference (§4): no common variable
        # means vacuous agreement.
        assert m(x=(1, 2)).is_compatible(m(y=(5, 6)))

    def test_empty_mapping_compatible_with_everything(self):
        assert EMPTY_MAPPING.is_compatible(m(x=(1, 2)))
        assert m(x=(1, 2)).is_compatible(EMPTY_MAPPING)

    def test_agreeing_common_variable(self):
        assert m(x=(1, 2), y=(3, 4)).is_compatible(m(x=(1, 2), z=(5, 6)))

    def test_disagreeing_common_variable(self):
        assert not m(x=(1, 2)).is_compatible(m(x=(1, 3)))

    def test_compatibility_is_symmetric(self):
        a, b = m(x=(1, 2), y=(3, 4)), m(y=(3, 4))
        assert a.is_compatible(b) == b.is_compatible(a) == True  # noqa: E712

    def test_function_form(self):
        assert compatible(m(x=(1, 2)), m(y=(1, 2)))


class TestUnion:
    def test_union_of_compatible(self):
        joined = m(x=(1, 2)).union(m(y=(3, 4)))
        assert joined == m(x=(1, 2), y=(3, 4))

    def test_union_with_overlap(self):
        joined = m(x=(1, 2), y=(3, 4)).union(m(y=(3, 4), z=(5, 5)))
        assert joined.domain == {"x", "y", "z"}

    def test_union_of_incompatible_raises(self):
        with pytest.raises(MappingError):
            m(x=(1, 2)).union(m(x=(2, 3)))

    def test_merge_function(self):
        assert merge(m(x=(1, 2)), EMPTY_MAPPING) == m(x=(1, 2))


class TestRestriction:
    def test_restrict(self):
        assert m(x=(1, 2), y=(3, 4)).restrict({"x", "z"}) == m(x=(1, 2))

    def test_restrict_to_nothing(self):
        assert m(x=(1, 2)).restrict(()) == EMPTY_MAPPING

    def test_drop(self):
        assert m(x=(1, 2), y=(3, 4)).drop({"x"}) == m(y=(3, 4))

    def test_rename(self):
        renamed = m(x=(1, 2)).rename({"x": "z"})
        assert renamed == m(z=(1, 2))

    def test_rename_collision_raises(self):
        with pytest.raises(MappingError):
            m(x=(1, 2), y=(3, 4)).rename({"x": "y"})

    def test_as_dict_is_a_copy(self):
        mapping = m(x=(1, 2))
        d = mapping.as_dict()
        d["y"] = Span(9, 9)
        assert "y" not in mapping
