"""Spans: the paper's [i, j> interval objects (§2.1)."""

import pytest

from repro.core import Span, SpanError, all_spans, count_spans, span


class TestConstruction:
    def test_simple_span(self):
        s = Span(2, 5)
        assert s.begin == 2 and s.end == 5
        assert len(s) == 3

    def test_empty_span(self):
        assert Span(3, 3).is_empty
        assert len(Span(3, 3)) == 0

    def test_begin_must_be_positive(self):
        with pytest.raises(SpanError):
            Span(0, 1)

    def test_end_before_begin_rejected(self):
        with pytest.raises(SpanError):
            Span(4, 2)

    def test_str_uses_paper_notation(self):
        assert str(Span(1, 4)) == "[1, 4>"

    def test_span_helper(self):
        assert span(1, 2) == Span(1, 2)


class TestIdentity:
    def test_empty_spans_at_different_positions_differ(self):
        # §2.1: [i, i> and [j, j> are different objects even though both
        # denote the empty string.
        assert Span(2, 2) != Span(5, 5)

    def test_value_equality_and_hash(self):
        assert Span(1, 3) == Span(1, 3)
        assert hash(Span(1, 3)) == hash(Span(1, 3))
        assert len({Span(1, 3), Span(1, 3), Span(1, 4)}) == 2

    def test_ordering_is_lexicographic(self):
        assert Span(1, 2) < Span(1, 3) < Span(2, 2)


class TestGeometry:
    def test_contains(self):
        assert Span(1, 10).contains(Span(3, 5))
        assert Span(1, 10).contains(Span(1, 10))
        assert not Span(3, 5).contains(Span(1, 10))

    def test_overlaps(self):
        assert Span(1, 5).overlaps(Span(4, 8))
        assert not Span(1, 4).overlaps(Span(4, 8))

    def test_empty_spans_overlap_nothing(self):
        assert not Span(3, 3).overlaps(Span(1, 10))
        assert not Span(1, 10).overlaps(Span(3, 3))

    def test_precedes(self):
        assert Span(1, 4).precedes(Span(4, 8))
        assert not Span(1, 5).precedes(Span(4, 8))

    def test_shift(self):
        assert Span(2, 4).shift(3) == Span(5, 7)


class TestEnumeration:
    def test_all_spans_of_length_two(self):
        spans = set(all_spans(2))
        assert spans == {
            Span(1, 1), Span(1, 2), Span(1, 3),
            Span(2, 2), Span(2, 3), Span(3, 3),
        }

    @pytest.mark.parametrize("length", [0, 1, 2, 5, 10])
    def test_count_matches_formula(self, length):
        assert count_spans(length) == len(list(all_spans(length)))
        assert count_spans(length) == (length + 1) * (length + 2) // 2

    def test_negative_length_rejected(self):
        with pytest.raises(SpanError):
            list(all_spans(-1))
        with pytest.raises(SpanError):
            count_spans(-1)
