"""Test package."""
