"""Measurement and rendering utilities."""

import time

import pytest

from repro.utils import (
    DelayRecorder,
    fit_power_law,
    format_table,
    growth_factors,
    record_enumeration,
    time_call,
)


class TestDelayRecorder:
    def test_counts_and_totals(self):
        recorder = DelayRecorder(iter(range(5)))
        assert list(recorder) == [0, 1, 2, 3, 4]
        assert recorder.stats.count == 5
        assert recorder.stats.total_time >= 0
        assert len(recorder.stats.delays) == 5

    def test_first_delay_includes_preprocessing(self):
        def slow_start():
            time.sleep(0.02)
            yield 1
            yield 2

        recorder = DelayRecorder(slow_start())
        list(recorder)
        assert recorder.stats.first_delay >= 0.02
        assert recorder.stats.max_inter_delay < recorder.stats.first_delay

    def test_empty_source(self):
        recorder = DelayRecorder(iter(()))
        assert list(recorder) == []
        assert recorder.stats.count == 0
        assert recorder.stats.mean_delay == 0.0

    def test_record_enumeration_with_limit(self):
        stats = record_enumeration(iter(range(1000)), limit=10)
        assert stats.count == 10

    def test_stats_str(self):
        stats = record_enumeration(iter(range(3)))
        assert "3 results" in str(stats)

    def test_time_call(self):
        seconds, result = time_call(lambda x: x * 2, 21, repeat=3)
        assert result == 42 and seconds >= 0


class TestRender:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 22], [333, 4]], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert "---" in lines[2]
        assert lines[3].startswith("1  ")

    def test_format_table_float_formatting(self):
        table = format_table(["x"], [[0.12345], [12345.6], [0.0]])
        assert "0.1234" in table or "0.1235" in table
        assert "e+" in table.lower() or "1.235e" in table.lower()
        assert "0" in table

    def test_growth_factors(self):
        assert growth_factors([1, 2, 8]) == [2.0, 4.0]

    def test_growth_factors_with_zero(self):
        assert growth_factors([0, 5]) == [float("inf")]

    def test_fit_power_law_exact(self):
        xs = [1, 2, 4, 8]
        ys = [3 * x ** 2 for x in xs]
        assert fit_power_law(xs, ys) == pytest.approx(2.0, abs=1e-9)

    def test_fit_power_law_linear(self):
        xs = [1, 10, 100]
        ys = [5 * x for x in xs]
        assert fit_power_law(xs, ys) == pytest.approx(1.0, abs=1e-9)

    def test_fit_power_law_degenerate(self):
        import math

        assert math.isnan(fit_power_law([1], [1]))
        assert math.isnan(fit_power_law([1, 1], [2, 3]))
