"""The persistent corpus store: ingest/dedup/update/remove semantics,
round-trip persistence across handles, posting-list maintenance, the index
planner's superset guarantee, and the sorted-array helpers."""

import sqlite3
import tempfile
from pathlib import Path
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import CorpusError, CorpusStore, content_hash, plan_candidates
from repro.corpus import index as corpus_index
from repro.corpus.index import (
    filter_min_count,
    id_array,
    intersect_sorted,
    pack_ids,
    subtract_sorted,
    unpack_ids,
)
from repro.regex import parse
from repro.va import evaluate_naive, regex_to_va, trim

from ..properties.conftest import sequential_formulas

DOCS = ["abc", "aabb", "cc", "b", "", "zebra", "ccc"]


def _prefilter(formula: str):
    return trim(regex_to_va(parse(formula))).prefilter()


def _store(tmp_path: Path, texts=DOCS) -> CorpusStore:
    store = CorpusStore(tmp_path / "store.sqlite")
    store.add_many(texts)
    return store


class TestIngest:
    def test_add_assigns_ascending_ids(self, tmp_path):
        with _store(tmp_path) as store:
            assert len(store) == len(DOCS)
            ids = store.doc_ids()
            assert ids == sorted(ids)
            assert [store.text(i) for i in ids] == DOCS

    def test_content_hash_dedup_returns_existing_id(self, tmp_path):
        with _store(tmp_path) as store:
            first = store.contains_text("abc")
            assert first is not None
            assert store.add("abc") == first
            assert store.dedup_hits == 1
            assert len(store) == len(DOCS)

    def test_add_many_dedups_within_one_batch(self, tmp_path):
        with CorpusStore(tmp_path / "store.sqlite") as store:
            ids = store.add_many(["x", "y", "x"])
            assert ids[0] == ids[2]
            assert len(store) == 2
            assert store.dedup_hits == 1

    def test_directory_path_gets_a_default_filename(self, tmp_path):
        with CorpusStore(tmp_path) as store:
            store.add("abc")
            assert store.path == tmp_path / "corpus.sqlite"
            assert store.path.exists()

    def test_membership_and_iteration(self, tmp_path):
        with _store(tmp_path) as store:
            ids = store.doc_ids()
            assert list(store) == ids
            assert ids[0] in store
            assert max(ids) + 1 not in store
            assert "abc" not in store  # only ids are members
            assert store.contains_text("not ingested") is None

    def test_accepts_document_objects(self, tmp_path):
        from repro.core import Document

        with CorpusStore(tmp_path / "store.sqlite") as store:
            doc_id = store.add(Document("abc"))
            assert store.text(doc_id) == "abc"
            assert store.contains_text(Document("abc")) == doc_id


class TestPersistence:
    def test_reopen_preserves_documents_and_postings(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with CorpusStore(path) as store:
            ids = store.add_many(DOCS)
            letters = store.letters()
            posting_c = store.posting("c")
            assert posting_c is not None
        with CorpusStore(path) as reopened:
            assert reopened.doc_ids() == sorted(set(ids))
            assert reopened.letters() == letters
            ids_again, counts_again = reopened.posting("c")
            assert list(ids_again) == list(posting_c[0])
            assert list(counts_again) == list(posting_c[1])
            assert [reopened.text(i) for i in ids[: len(DOCS)]] == DOCS

    def test_reopen_gives_identical_query_results(self, tmp_path):
        from repro import Engine

        path = tmp_path / "store.sqlite"
        query = trim(regex_to_va(parse("(a|b)*x{c+}(a|b)*")))
        with CorpusStore(path) as store:
            store.add_many(DOCS)
            before = Engine().evaluate_many(query, store)
        with CorpusStore(path) as reopened:
            after = Engine().evaluate_many(query, reopened)
        assert after == before

    def test_schema_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "store.sqlite"
        CorpusStore(path).close()
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
            )
        with pytest.raises(CorpusError, match="schema version"):
            CorpusStore(path)


class TestMaintenance:
    def test_remove_scrubs_postings(self, tmp_path):
        with _store(tmp_path) as store:
            zebra = store.contains_text("zebra")
            store.remove(zebra)
            assert zebra not in store
            assert store.posting("z") is None  # zebra was the only z document
            assert "z" not in store.letters()
            ids, _counts = store.posting("b")
            assert zebra not in set(ids)
            assert store.verify() == []

    def test_remove_unknown_id_raises(self, tmp_path):
        with _store(tmp_path) as store:
            with pytest.raises(CorpusError, match="no document"):
                store.remove(10_000)

    def test_update_rewrites_artifacts_and_postings(self, tmp_path):
        with _store(tmp_path) as store:
            doc_id = store.contains_text("abc")
            store.update(doc_id, "dddd")
            assert store.text(doc_id) == "dddd"
            assert store.contains_text("abc") is None
            assert store.contains_text("dddd") == doc_id
            ids, counts = store.posting("d")
            assert dict(zip(ids, counts))[doc_id] == 4
            for letter in "abc":
                posting = store.posting(letter)
                if posting is not None:
                    assert doc_id not in set(posting[0])
            assert store.verify() == []

    def test_update_to_same_content_is_a_noop(self, tmp_path):
        with _store(tmp_path) as store:
            doc_id = store.contains_text("abc")
            store.update(doc_id, "abc")
            assert store.text(doc_id) == "abc"
            assert store.verify() == []

    def test_update_that_duplicates_another_document_raises(self, tmp_path):
        with _store(tmp_path) as store:
            doc_id = store.contains_text("abc")
            with pytest.raises(CorpusError, match="duplicate"):
                store.update(doc_id, "cc")
            assert store.text(doc_id) == "abc"  # unchanged

    def test_update_unknown_id_raises(self, tmp_path):
        with _store(tmp_path) as store:
            with pytest.raises(CorpusError, match="no document"):
                store.update(10_000, "x")

    def test_verify_clean_store(self, tmp_path):
        with _store(tmp_path) as store:
            assert store.verify() == []

    def test_verify_reports_and_rebuild_repairs_corruption(self, tmp_path):
        with _store(tmp_path) as store:
            doc_id = store.contains_text("aabb")
            with store._conn:
                store._conn.execute(
                    "UPDATE documents SET histogram = '{}', length = 99 "
                    "WHERE doc_id = ?",
                    (doc_id,),
                )
            issues = store.verify()
            assert any("stale histogram" in issue for issue in issues)
            assert any("length" in issue for issue in issues)
            summary = store.rebuild(verify=True)
            assert summary["documents"] == len(DOCS)
            assert summary["verified"] is True
            assert summary["issues"] == issues
            assert store.verify() == []

    def test_rebuild_clean_store_changes_nothing(self, tmp_path):
        with _store(tmp_path) as store:
            before = {
                letter: (list(store.posting(letter)[0]),
                         list(store.posting(letter)[1]))
                for letter in sorted(store.letters())
            }
            summary = store.rebuild()
            assert summary == {
                "documents": len(DOCS),
                "letters": len(before),
                "verified": False,
                "issues": [],
            }
            after = {
                letter: (list(store.posting(letter)[0]),
                         list(store.posting(letter)[1]))
                for letter in sorted(store.letters())
            }
            assert after == before

    def test_content_hash_is_stable(self):
        assert content_hash("abc") == content_hash("abc")
        assert content_hash("abc") != content_hash("abd")


class TestIncrementalAppend:
    def test_append_matches_fresh_ingest(self, tmp_path):
        with _store(tmp_path, ["abc", "zz"]) as store:
            grown = store.append(1, "cba")
            assert grown.text == "abccba"
            assert store.text(1) == "abccba"
            assert store.verify() == []
            with _store(tmp_path / "other", ["abccba", "zz"]) as oracle:
                assert store.letters() == oracle.letters()
                for letter in sorted(oracle.letters()):
                    assert (
                        list(store.posting(letter)[1])
                        == list(oracle.posting(letter)[1])
                    ), letter

    def test_append_empty_text_is_a_noop(self, tmp_path):
        with _store(tmp_path, ["abc"]) as store:
            assert store.append(1, "").text == "abc"
            assert store.verify() == []

    def test_append_replaces_cached_document(self, tmp_path):
        with _store(tmp_path, ["abc"]) as store:
            store.document(1)
            grown = store.append(1, "d")
            assert store.document(1) is grown

    def test_append_duplicating_another_document_raises(self, tmp_path):
        with _store(tmp_path, ["abc", "ab"]) as store:
            with pytest.raises(CorpusError, match="duplicate"):
                store.append(2, "c")

    def test_append_accepts_document_objects(self, tmp_path):
        from repro.core import Document

        with _store(tmp_path, ["ab"]) as store:
            assert store.append(1, Document("ba")).text == "abba"


class TestReadOnlyHandles:
    def test_writable_store_runs_in_wal_mode(self, tmp_path):
        with _store(tmp_path) as store:
            (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
            assert mode == "wal"

    def test_read_only_rejects_mutations(self, tmp_path):
        path = tmp_path / "store.sqlite"
        _store(tmp_path).close()
        with CorpusStore(path, read_only=True) as reader:
            for call in (
                lambda: reader.add_many(["new"]),
                lambda: reader.remove(1),
                lambda: reader.update(1, "x"),
                lambda: reader.append(1, "x"),
                lambda: reader.rebuild(),
            ):
                with pytest.raises(CorpusError, match="read-only"):
                    call()

    def test_read_only_requires_an_existing_store(self, tmp_path):
        with pytest.raises(CorpusError, match="does not exist"):
            CorpusStore(tmp_path / "missing.sqlite", read_only=True)

    def test_reader_sees_writer_commits_after_refresh(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with _store(tmp_path, ["abc"]) as writer:
            with CorpusStore(path, read_only=True) as reader:
                assert reader.text(1) == "abc"
                writer.append(1, "def")
                reader.refresh()
                assert reader.text(1) == "abcdef"
                ids, counts = reader.posting("d")
                assert list(ids) == [1]
                assert list(counts) == [1]


class TestPlanner:
    def test_required_letters_seed_from_postings(self, tmp_path):
        with _store(tmp_path) as store:
            plan = store.candidates(_prefilter("(a|b)*x{c+}(a|b)*"))
            kinds = [op.kind for op in plan.ops]
            assert kinds[0] == "posting-seed"
            matching = {store.contains_text(t) for t in ("abc", "cc", "ccc")}
            assert set(plan.doc_ids) == matching

    def test_count_bound_filters_postings(self, tmp_path):
        with _store(tmp_path) as store:
            plan = store.candidates(_prefilter("x{cc}c*"))
            assert set(plan.doc_ids) == {
                store.contains_text("cc"),
                store.contains_text("ccc"),
            }

    def test_posting_miss_short_circuits_to_empty(self, tmp_path):
        with _store(tmp_path) as store:
            plan = store.candidates(_prefilter("x{q}"))
            assert list(plan.doc_ids) == []
            assert [op.kind for op in plan.ops] == ["posting-miss"]

    def test_empty_language_short_circuits(self, tmp_path):
        prefilter = SimpleNamespace(empty=True)
        with _store(tmp_path) as store:
            plan = plan_candidates(store, prefilter)
            assert list(plan.doc_ids) == []
            assert [op.kind for op in plan.ops] == ["empty-query"]

    def test_length_window_seeds_without_required_letters(self, tmp_path):
        with _store(tmp_path) as store:
            # (a|b)(a|b) requires no specific letter but pins the length.
            plan = store.candidates(_prefilter("x{(a|b)(a|b)}"))
            assert plan.ops[0].kind == "length-scan"
            assert set(plan.doc_ids) == {
                doc_id for doc_id in store if len(store.text(doc_id)) == 2
            }

    def test_full_scan_subtracts_foreign_letters(self, tmp_path):
        with _store(tmp_path) as store:
            plan = store.candidates(_prefilter("x{(a|b)*}"))
            kinds = [op.kind for op in plan.ops]
            assert kinds[0] == "full-scan"
            assert "subtract" in kinds
            expected = {
                doc_id
                for doc_id in store
                if set(store.text(doc_id)) <= {"a", "b"}
            }
            assert set(plan.doc_ids) == expected

    def test_within_restricts_the_candidates(self, tmp_path):
        with _store(tmp_path) as store:
            scope = store.doc_ids()[:2]
            plan = store.candidates(
                _prefilter("(a|b)*x{c+}(a|b)*"), within=scope
            )
            assert plan.ops[-1].kind == "restrict"
            assert set(plan.doc_ids) <= set(scope)

    def test_describe_lists_every_operation(self, tmp_path):
        with _store(tmp_path) as store:
            plan = store.candidates(_prefilter("(a|b)*x{c+}(a|b)*"))
            text = plan.describe()
            assert text.startswith(f"index plan over {len(DOCS)} document(s):")
            assert "candidates" in text

    def test_survivors_match_the_walked_prefilter(self, tmp_path):
        with _store(tmp_path) as store:
            prefilter = _prefilter("(a|b)*x{c+}(a|b)*")
            _plan, kept = store.survivors(prefilter)
            walked = [
                doc_id
                for doc_id in store
                if prefilter.admits(store.text(doc_id))
            ]
            assert kept == walked


#: Short documents over a 4-letter alphabet, one letter foreign to the
#: ab-heavy formulas the generator produces.
corpus_texts = st.lists(
    st.text(alphabet="abcz", min_size=0, max_size=6),
    min_size=0,
    max_size=6,
    unique=True,
)


class TestSupersetProperty:
    @given(sequential_formulas(), corpus_texts)
    @settings(max_examples=40, deadline=None)
    def test_candidates_never_drop_a_matching_document(self, formula, texts):
        va = trim(regex_to_va(formula))
        prefilter = va.prefilter()
        with tempfile.TemporaryDirectory() as tmp:
            with CorpusStore(Path(tmp) / "store.sqlite") as store:
                ids = store.add_many(texts)
                matching = {
                    doc_id
                    for doc_id, text in zip(ids, texts)
                    if evaluate_naive(va, text)
                }
                plan = store.candidates(prefilter)
                assert matching <= set(plan.doc_ids)
                _plan, kept = store.survivors(prefilter)
                assert matching <= set(kept)


class TestSortedArrayHelpers:
    @pytest.fixture(params=["numpy", "pure-python"])
    def maybe_no_numpy(self, request, monkeypatch):
        if request.param == "pure-python":
            monkeypatch.setattr(corpus_index, "NUMPY", None)
        elif corpus_index.NUMPY is None:
            pytest.skip("numpy not installed")
        return request.param

    def test_pack_unpack_roundtrip(self):
        ids = id_array([0, 1, 7, 2**32 - 1])
        assert list(unpack_ids(pack_ids(ids))) == list(ids)
        assert unpack_ids(b"") == id_array()

    def test_intersect(self, maybe_no_numpy):
        a, b = id_array([1, 3, 5, 9]), id_array([2, 3, 4, 9, 12])
        assert list(intersect_sorted(a, b)) == [3, 9]
        assert list(intersect_sorted(a, id_array())) == []
        assert list(intersect_sorted(id_array(), b)) == []

    def test_subtract(self, maybe_no_numpy):
        a, b = id_array([1, 3, 5, 9]), id_array([3, 9, 11])
        assert list(subtract_sorted(a, b)) == [1, 5]
        assert list(subtract_sorted(a, id_array())) == list(a)

    def test_filter_min_count(self, maybe_no_numpy):
        ids, counts = id_array([1, 2, 3]), id_array([5, 1, 2])
        assert filter_min_count(ids, counts, 2) == id_array([1, 3])
        assert filter_min_count(ids, counts, 1) is ids

    @given(
        st.lists(st.integers(min_value=0, max_value=50), unique=True),
        st.lists(st.integers(min_value=0, max_value=50), unique=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_set_operations_match_the_set_oracle(self, left, right):
        a, b = id_array(sorted(left)), id_array(sorted(right))
        assert list(intersect_sorted(a, b)) == sorted(set(left) & set(right))
        assert list(subtract_sorted(a, b)) == sorted(set(left) - set(right))
