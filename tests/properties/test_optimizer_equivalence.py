"""The optimizer's central contract: optimized plans compute exactly the
spanner of the unoptimized plan and of the one-shot naive evaluation
path, on every backend (hypothesis over random RA trees)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, Instantiation, RAQuery, parse
from repro.algebra.planner import evaluate_ra
from repro.algebra.ra_tree import Difference, Join, Leaf, Project, UnionNode
from repro.va import evaluate_naive
from repro.workloads import random_sequential_formula

from .conftest import documents

_SETTINGS = settings(max_examples=30, deadline=None)

_VARIABLES = ("x", "y")


@st.composite
def ra_queries(draw, max_depth: int = 3):
    """Random instantiated RA trees over small sequential formula leaves.

    Leaves reuse a small formula pool, so duplicate subtrees (the CSE and
    dedup fodder) appear naturally.
    """
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    pool_size = draw(st.integers(min_value=1, max_value=3))
    pool = [
        random_sequential_formula(
            draw(st.integers(min_value=0, max_value=2)), rng, depth=2
        )
        for _ in range(pool_size)
    ]
    spanners = {f"s{i}": formula for i, formula in enumerate(pool)}

    def build(depth: int):
        grow = depth < max_depth and draw(st.booleans())
        if not grow:
            return Leaf(f"s{draw(st.integers(min_value=0, max_value=pool_size - 1))}")
        op = draw(st.sampled_from(("union", "join", "difference", "project")))
        if op == "project":
            keep = draw(
                st.frozensets(st.sampled_from(_VARIABLES), max_size=len(_VARIABLES))
            )
            return Project(build(depth + 1), keep)
        left, right = build(depth + 1), build(depth + 1)
        if op == "union":
            return UnionNode(left, right)
        if op == "join":
            return Join(left, right)
        return Difference(left, right)

    return build(0), Instantiation(spanners=spanners)


class TestOptimizedPlansAreEquivalent:
    @given(ra_queries(), documents)
    @_SETTINGS
    def test_optimized_matches_unoptimized_and_one_shot(self, query, doc):
        tree, inst = query
        expected = evaluate_ra(tree, inst, doc)
        optimized = Engine().evaluate(RAQuery(tree, inst), doc)
        unoptimized = Engine(optimize=False).evaluate(RAQuery(tree, inst), doc)
        assert optimized == expected
        assert unoptimized == expected

    @given(ra_queries(), documents)
    @_SETTINGS
    def test_optimized_agrees_across_backends(self, query, doc):
        tree, inst = query
        results = [
            Engine(backend=name).evaluate(RAQuery(tree, inst), doc)
            for name in ("matchgraph", "indexed")
        ]
        assert results[0] == results[1]

    @given(ra_queries(max_depth=2), documents)
    @_SETTINGS
    def test_compiled_va_matches_naive_run_semantics(self, query, doc):
        tree, inst = query
        engine = Engine()
        compiled = engine.compile(RAQuery(tree, inst), doc)
        assert evaluate_naive(compiled, doc) == evaluate_ra(tree, inst, doc)


class TestDeepDuplicateTrees:
    def test_deep_union_with_duplicates_collapses_and_agrees(self):
        formulas = ["x{(a|b)+}", "x{a+}b*", "x{(a|b)+}", "x{a+}b*", "x{(a|b)+}"]
        spanners = {f"s{i}": parse(text) for i, text in enumerate(formulas)}
        tree = Leaf("s0")
        for index in range(1, len(formulas)):
            tree = UnionNode(tree, Leaf(f"s{index}"))
        tree = Project(tree, frozenset({"x"}))
        inst = Instantiation(spanners=spanners)
        on, off = Engine(), Engine(optimize=False)
        plan_on = on.prepare(RAQuery(tree, inst)).plan
        plan_off = off.prepare(RAQuery(tree, inst)).plan
        assert plan_on.static_states() < plan_off.static_states()
        for doc in ("", "a", "ab", "abab", "bbaa"):
            assert on.evaluate(RAQuery(tree, inst), doc) == off.evaluate(
                RAQuery(tree, inst), doc
            )
