"""Algebraic laws of spans, mappings, and relations (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Mapping, SpanRelation

from .conftest import mappings, spans


class TestSpanLaws:
    @given(spans(), spans())
    def test_overlap_is_symmetric(self, s1, s2):
        assert s1.overlaps(s2) == s2.overlaps(s1)

    @given(spans())
    def test_contains_is_reflexive(self, s):
        assert s.contains(s)

    @given(spans(), spans(), spans())
    def test_contains_is_transitive(self, s1, s2, s3):
        if s1.contains(s2) and s2.contains(s3):
            assert s1.contains(s3)

    @given(spans())
    def test_shift_roundtrip(self, s):
        assert s.shift(3).shift(-3) == s


class TestCompatibilityLaws:
    @given(mappings(), mappings())
    def test_compatibility_symmetric(self, m1, m2):
        assert m1.is_compatible(m2) == m2.is_compatible(m1)

    @given(mappings())
    def test_compatibility_reflexive(self, m):
        assert m.is_compatible(m)

    @given(mappings(), mappings())
    def test_union_commutative_on_compatibles(self, m1, m2):
        if m1.is_compatible(m2):
            assert m1.union(m2) == m2.union(m1)

    @given(mappings(), mappings())
    def test_union_domain(self, m1, m2):
        if m1.is_compatible(m2):
            assert m1.union(m2).domain == m1.domain | m2.domain

    @given(mappings())
    def test_empty_mapping_is_identity(self, m):
        assert m.union(Mapping()) == m

    @given(mappings(), st.sets(st.sampled_from("xyz")))
    def test_restriction_shrinks_domain(self, m, keep):
        restricted = m.restrict(keep)
        assert restricted.domain <= m.domain
        assert restricted.domain <= keep
        assert m.is_compatible(restricted)


class TestRelationLaws:
    @given(st.lists(mappings(), max_size=5), st.lists(mappings(), max_size=5))
    @settings(max_examples=40)
    def test_join_commutative(self, l1, l2):
        r1, r2 = SpanRelation(l1), SpanRelation(l2)
        assert r1.join(r2) == r2.join(r1)

    @given(
        st.lists(mappings(), max_size=4),
        st.lists(mappings(), max_size=4),
        st.lists(mappings(), max_size=4),
    )
    @settings(max_examples=25)
    def test_join_associative(self, l1, l2, l3):
        r1, r2, r3 = SpanRelation(l1), SpanRelation(l2), SpanRelation(l3)
        assert r1.join(r2).join(r3) == r1.join(r2.join(r3))

    @given(st.lists(mappings(), max_size=5))
    def test_difference_with_empty(self, l):
        rel = SpanRelation(l)
        assert rel.difference(SpanRelation()) == rel
        assert SpanRelation().difference(rel).is_empty

    @given(st.lists(mappings(), max_size=5))
    def test_self_difference_empty(self, l):
        rel = SpanRelation(l)
        assert rel.difference(rel).is_empty

    @given(st.lists(mappings(), max_size=5), st.lists(mappings(), max_size=5))
    @settings(max_examples=40)
    def test_difference_is_idempotent_in_subtrahend(self, l1, l2):
        r1, r2 = SpanRelation(l1), SpanRelation(l2)
        once = r1.difference(r2)
        assert once.difference(r2) == once

    @given(st.lists(mappings(), max_size=5), st.lists(mappings(), max_size=5))
    @settings(max_examples=40)
    def test_union_upper_bounds_both(self, l1, l2):
        r1, r2 = SpanRelation(l1), SpanRelation(l2)
        combined = r1.union(r2)
        assert all(m in combined for m in r1)
        assert all(m in combined for m in r2)
