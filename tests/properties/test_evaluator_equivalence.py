"""The central correctness property: every evaluation and compilation path
computes the same spanner (hypothesis)."""

from hypothesis import given, settings

from repro.regex import evaluate as reference_evaluate
from repro.va import (
    evaluate_naive,
    evaluate_va,
    make_semi_functional,
    regex_to_va,
    to_disjunctive_functional_va,
    trim,
)
from repro.algebra import (
    adhoc_difference,
    fpt_join,
    semantic_difference,
    semantic_join,
)

from .conftest import documents, sequential_formulas

_SETTINGS = settings(max_examples=40, deadline=None)


class TestEvaluatorEquivalence:
    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_compiled_va_matches_reference_semantics(self, formula, doc):
        va = trim(regex_to_va(formula))
        assert evaluate_va(va, doc) == reference_evaluate(formula, doc)

    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_poly_delay_matches_naive(self, formula, doc):
        va = trim(regex_to_va(formula))
        assert evaluate_va(va, doc) == evaluate_naive(va, doc)


class TestTransformEquivalence:
    @given(sequential_formulas(max_vars=2), documents)
    @_SETTINGS
    def test_semi_functionalisation_preserves_semantics(self, formula, doc):
        va = trim(regex_to_va(formula))
        prepared = make_semi_functional(va, va.variables)
        assert evaluate_va(prepared, doc) == evaluate_va(va, doc)

    @given(sequential_formulas(max_vars=2), documents)
    @_SETTINGS
    def test_disjunctive_functional_preserves_semantics(self, formula, doc):
        va = trim(regex_to_va(formula))
        dfunc = to_disjunctive_functional_va(va)
        assert evaluate_va(dfunc, doc) == evaluate_va(va, doc)


class TestCompiledOperators:
    @given(sequential_formulas(max_vars=2), sequential_formulas(max_vars=2), documents)
    @_SETTINGS
    def test_fpt_join_matches_semantic_join(self, f1, f2, doc):
        a1, a2 = trim(regex_to_va(f1)), trim(regex_to_va(f2))
        expected = semantic_join(evaluate_va(a1, doc), evaluate_va(a2, doc))
        assert evaluate_va(fpt_join(a1, a2), doc) == expected

    @given(sequential_formulas(max_vars=2), sequential_formulas(max_vars=2), documents)
    @_SETTINGS
    def test_adhoc_difference_matches_semantic_difference(self, f1, f2, doc):
        a1, a2 = trim(regex_to_va(f1)), trim(regex_to_va(f2))
        expected = semantic_difference(evaluate_va(a1, doc), evaluate_va(a2, doc))
        assert evaluate_va(adhoc_difference(a1, a2, doc), doc) == expected
