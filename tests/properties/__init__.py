"""Test package."""
