"""Reductions agree with the DPLL oracle on random formulas (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reductions import (
    build_difference_instance,
    build_join_instance,
    build_tovey_instance,
    is_satisfiable,
    random_3cnf,
    random_tovey_cnf,
    weighted_satisfiable,
    build_w1_instance,
)
from repro.va import evaluate_va, regex_to_va, trim
from repro.algebra import semantic_difference, semantic_join

_SETTINGS = settings(max_examples=15, deadline=None)


def _relation(formula, document):
    return evaluate_va(trim(regex_to_va(formula)), document)


@st.composite
def small_3cnf(draw):
    seed = draw(st.integers(min_value=0, max_value=10**6))
    n_clauses = draw(st.integers(min_value=1, max_value=5))
    return random_3cnf(4, n_clauses, random.Random(seed))


@st.composite
def small_tovey(draw):
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return random_tovey_cnf(4, random.Random(seed))


class TestJoinReduction:
    @given(small_3cnf())
    @_SETTINGS
    def test_nonempty_iff_satisfiable(self, cnf):
        instance = build_join_instance(cnf)
        joined = semantic_join(
            _relation(instance.gamma1, instance.document),
            _relation(instance.gamma2, instance.document),
        )
        assert (not joined.is_empty) == is_satisfiable(cnf)
        for mapping in joined:
            assert cnf.evaluate(instance.decode(mapping))


class TestDifferenceReduction:
    @given(small_3cnf())
    @_SETTINGS
    def test_nonempty_iff_satisfiable(self, cnf):
        instance = build_difference_instance(cnf)
        difference = semantic_difference(
            _relation(instance.gamma1, instance.document),
            _relation(instance.gamma2, instance.document),
        )
        assert (not difference.is_empty) == is_satisfiable(cnf)
        for mapping in difference:
            assert cnf.evaluate(instance.decode(mapping))


class TestToveyReduction:
    @given(small_tovey())
    @_SETTINGS
    def test_nonempty_iff_satisfiable(self, cnf):
        instance = build_tovey_instance(cnf)
        difference = semantic_difference(
            _relation(instance.gamma1, instance.document),
            _relation(instance.gamma2, instance.document),
        )
        assert (not difference.is_empty) == is_satisfiable(cnf)


class TestW1Reduction:
    @given(small_3cnf(), st.integers(min_value=1, max_value=2))
    @settings(max_examples=10, deadline=None)
    def test_nonempty_iff_weight_k_satisfiable(self, cnf, weight):
        instance = build_w1_instance(cnf, weight)
        difference = semantic_difference(
            _relation(instance.gamma1, instance.document),
            _relation(instance.gamma2, instance.document),
        )
        expected = weighted_satisfiable(cnf, weight) is not None
        assert (not difference.is_empty) == expected
