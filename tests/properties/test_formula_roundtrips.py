"""Parser round-trips and classification invariants (hypothesis)."""

from hypothesis import given, settings

from repro.regex import (
    is_disjunctive_functional,
    is_functional,
    is_sequential,
    parse,
)
from repro.regex.transform import count_disjuncts, disjunct_set

from .conftest import sequential_formulas


class TestRoundTrips:
    @given(sequential_formulas())
    @settings(max_examples=80)
    def test_render_parse_identity(self, formula):
        assert parse(formula.to_text()) == formula

    @given(sequential_formulas())
    @settings(max_examples=80)
    def test_generator_emits_sequential_formulas(self, formula):
        assert is_sequential(formula)


class TestClassHierarchy:
    @given(sequential_formulas())
    @settings(max_examples=60)
    def test_functional_implies_dfunc_implies_sequential(self, formula):
        if is_functional(formula):
            assert is_disjunctive_functional(formula)
        if is_disjunctive_functional(formula):
            assert is_sequential(formula)


class TestDisjunctiveTranslation:
    @given(sequential_formulas(max_vars=2))
    @settings(max_examples=40)
    def test_disjunct_count_matches_materialisation(self, formula):
        assert count_disjuncts(formula) == len(disjunct_set(formula))

    @given(sequential_formulas(max_vars=2))
    @settings(max_examples=40)
    def test_all_disjuncts_functional(self, formula):
        for disjunct in disjunct_set(formula):
            assert is_functional(disjunct), disjunct.to_text()
