"""The tail-session correctness property: incremental re-evaluation of a
growing document is indistinguishable from fresh full evaluations at
every step, on every backend (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SpanRelation
from repro.engine import Engine, available_backends
from repro.va import evaluate_va, regex_to_va, trim

from .conftest import sequential_formulas

_SETTINGS = settings(max_examples=30, deadline=None)

ALL_BACKENDS = available_backends()

#: Append chunks over the property alphabet — empty chunks included, so
#: no-growth re-evaluations and multi-append gaps are exercised too.
chunks = st.lists(st.text(alphabet="ab", max_size=4), min_size=1, max_size=5)


class TestTailMatchesFullEvaluation:
    @given(sequential_formulas(), chunks)
    @_SETTINGS
    def test_stepwise_fresh_mappings_match_oracle(self, formula, parts):
        va = trim(regex_to_va(formula))
        sessions = {name: Engine(backend=name).tail(va) for name in ALL_BACKENDS}
        text = ""
        seen = set()
        for chunk in parts:
            text += chunk
            full = evaluate_va(va, text)
            expected = SpanRelation(m for m in full if m not in seen)
            for name, session in sessions.items():
                fresh = session.reevaluate(chunk)
                assert SpanRelation(fresh) == expected, (name, text)
            seen.update(expected)

    @given(sequential_formulas(max_vars=2), chunks)
    @_SETTINGS
    def test_union_of_emissions_is_union_of_prefix_spanners(self, formula, parts):
        va = trim(regex_to_va(formula))
        session = Engine().tail(va)
        emitted = []
        text = ""
        expected = set()
        for chunk in parts:
            emitted.extend(session.reevaluate(chunk))
            text += chunk
            expected.update(evaluate_va(va, text))
        assert set(emitted) == expected
        assert len(emitted) == len(expected)  # no duplicates ever emitted
        assert session.total_matches == len(expected)

    @given(sequential_formulas(max_vars=2), st.text(alphabet="ab", max_size=6))
    @_SETTINGS
    def test_single_shot_session_equals_plain_evaluation(self, formula, doc):
        va = trim(regex_to_va(formula))
        for name in ALL_BACKENDS:
            session = Engine(backend=name).tail(va, doc)
            assert SpanRelation(session.reevaluate()) == evaluate_va(va, doc), name
