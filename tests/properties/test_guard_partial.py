"""Degradation soundness (hypothesis): a partial result under
``on_budget="partial"`` is exactly the unguarded enumeration's prefix —
never a different subset, never reordered, never an extra mapping —
on every backend."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine, available_backends
from repro.va import regex_to_va, trim

from .conftest import documents, sequential_formulas

_SETTINGS = settings(max_examples=25, deadline=None)

ALL_BACKENDS = available_backends()


class TestPartialPrefix:
    @given(
        sequential_formulas(max_vars=2),
        documents,
        st.integers(min_value=1, max_value=6),
        st.sampled_from(ALL_BACKENDS),
    )
    @_SETTINGS
    def test_partial_is_prefix_of_unguarded_enumeration(
        self, formula, doc, k, backend
    ):
        va = trim(regex_to_va(formula))
        engine = Engine(backend=backend)
        unguarded = list(engine.enumerate(va, doc))
        partial = list(
            engine.enumerate(
                va, doc, budget={"mappings": k}, on_budget="partial"
            )
        )
        assert partial == unguarded[: min(k, len(unguarded))]

    @given(
        sequential_formulas(max_vars=2),
        documents,
        st.integers(min_value=1, max_value=6),
        st.sampled_from(ALL_BACKENDS),
    )
    @_SETTINGS
    def test_truncation_flag_tracks_whether_anything_was_cut(
        self, formula, doc, k, backend
    ):
        va = trim(regex_to_va(formula))
        engine = Engine(backend=backend)
        total = len(engine.evaluate(va, doc))
        relation = engine.evaluate(
            va, doc, budget={"mappings": k}, on_budget="partial"
        )
        assert relation.truncated == (total > k)
        assert len(relation) == min(k, total)
