"""Shared hypothesis strategies for the property-test suite."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.core import Mapping, Span
from repro.regex.ast import RegexFormula
from repro.workloads import random_sequential_formula

#: Documents over a tiny alphabet, short enough for the naive baselines.
documents = st.text(alphabet="ab", min_size=0, max_size=5)


@st.composite
def spans(draw, max_position: int = 8) -> Span:
    begin = draw(st.integers(min_value=1, max_value=max_position))
    end = draw(st.integers(min_value=begin, max_value=max_position))
    return Span(begin, end)


@st.composite
def mappings(draw, variables=("x", "y", "z"), max_position: int = 6) -> Mapping:
    chosen = draw(
        st.lists(st.sampled_from(variables), unique=True, max_size=len(variables))
    )
    return Mapping({var: draw(spans(max_position)) for var in chosen})


@st.composite
def sequential_formulas(draw, max_vars: int = 3) -> RegexFormula:
    """Random sequential regex formulas via the workload generator,
    steered by a hypothesis-drawn seed so shrinking works."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    n_vars = draw(st.integers(min_value=0, max_value=max_vars))
    depth = draw(st.integers(min_value=1, max_value=3))
    return random_sequential_formula(n_vars, random.Random(seed), depth=depth)
