"""Suite-wide configuration.

``REPRO_FAULTS=ci`` (or an integer seed) activates the deterministic
fault-injection harness for the whole run: the suite must stay green
while sqlite contention and shard crashes are being injected, proving
the retry/reaping/restart paths absorb them.  Unset or ``off``, this is
a no-op and the suite runs against production behaviour.
"""

from repro.testing import install_from_env

install_from_env()
