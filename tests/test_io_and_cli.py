"""Interchange (JSON / DOT) and the command-line interface."""

import json

import pytest

from repro.core import Mapping, Span, SpanRelation, SpannerError
from repro.cli import main
from repro.io import (
    dumps_relation,
    dumps_va,
    loads_relation,
    loads_va,
    match_graph_to_dot,
    va_to_dot,
)
from repro.regex import parse
from repro.va import FactorizedVA, MatchGraph, evaluate_va, regex_to_va, trim


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


def sample_va():
    return trim(regex_to_va(parse("x{a*}b|c")))


class TestVASerialisation:
    def test_roundtrip_preserves_semantics(self):
        va = sample_va()
        restored = loads_va(dumps_va(va))
        for doc in ("b", "ab", "aab", "c", "a"):
            assert evaluate_va(restored, doc) == evaluate_va(va, doc), doc

    def test_json_is_valid_and_versioned(self):
        payload = json.loads(dumps_va(sample_va()))
        assert payload["format"] == "repro-va"
        assert payload["version"] == 1
        assert isinstance(payload["transitions"], list)

    def test_wrong_format_rejected(self):
        with pytest.raises(SpannerError):
            loads_va(json.dumps({"format": "something-else", "version": 1}))

    def test_wrong_version_rejected(self):
        with pytest.raises(SpannerError):
            loads_va(json.dumps({"format": "repro-va", "version": 99}))

    def test_bad_label_rejected(self):
        doc = {
            "format": "repro-va",
            "version": 1,
            "initial": 0,
            "accepting": [1],
            "transitions": [[0, {"zap": "x"}, 1]],
        }
        with pytest.raises(SpannerError):
            loads_va(json.dumps(doc))


class TestRelationSerialisation:
    def test_roundtrip(self):
        relation = SpanRelation([m(x=(1, 2), y=(3, 3)), Mapping()])
        assert loads_relation(dumps_relation(relation)) == relation

    def test_empty_relation(self):
        assert loads_relation(dumps_relation(SpanRelation())) == SpanRelation()


class TestDot:
    def test_va_dot_mentions_everything(self):
        dot = va_to_dot(sample_va())
        assert dot.startswith("digraph")
        assert "x⊢" in dot and "⊣x" in dot
        assert "doublecircle" in dot  # accepting states

    def test_match_graph_dot(self):
        graph = MatchGraph(FactorizedVA(sample_va()), "ab")
        dot = match_graph_to_dot(graph)
        assert dot.startswith("digraph") and "·a" in dot


class TestCli:
    def test_extract_table(self, capsys):
        assert main(["extract", "x{[a-z]+}@y{[a-z]+}", "--text", "ab@cd"]) == 0
        out = capsys.readouterr().out
        assert "1 mapping(s)" in out and "[1, 3>" in out

    def test_extract_json(self, capsys):
        assert main(["extract", "x{a}b", "--text", "ab", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mappings"] == [{"x": [1, 2]}]

    def test_extract_from_file(self, tmp_path, capsys):
        path = tmp_path / "doc.txt"
        path.write_text("ab@cd")
        assert main(["extract", "x{[a-z]+}@y{[a-z]+}", "--file", str(path)]) == 0
        assert "1 mapping(s)" in capsys.readouterr().out

    def test_classify(self, capsys):
        assert main(["classify", "x{a}(y{b}|ε)"]) == 0
        out = capsys.readouterr().out
        assert "sequential:" in out and "functional:" in out

    def test_dot_output(self, capsys):
        assert main(["dot", "x{a}b"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_syntax_error_reported(self, capsys):
        assert main(["extract", "x{a", "--text", "a"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_show_content(self, capsys):
        assert main(
            ["extract", "x{[a-z]+}", "--text", "abc", "--show-content"]
        ) == 0
        assert "'abc'" in capsys.readouterr().out


class TestTailCli:
    def test_tail_reports_existing_content_once(self, tmp_path, capsys):
        path = tmp_path / "log.txt"
        path.write_text("ab")
        assert main(
            ["tail", "x{a}b", "--file", str(path),
             "--max-polls", "2", "--interval", "0"]
        ) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1  # the second (no-growth) poll emits nothing
        assert "1" in out[0]

    def test_tail_json_lines(self, tmp_path, capsys):
        path = tmp_path / "log.txt"
        path.write_text("ab")
        assert main(
            ["tail", "x{a}b", "--file", str(path),
             "--max-polls", "1", "--interval", "0", "--json"]
        ) == 0
        (line,) = capsys.readouterr().out.strip().splitlines()
        assert json.loads(line) == {"x": [1, 2]}

    def test_tail_picks_up_appends(self, tmp_path, capsys):
        import threading

        path = tmp_path / "log.txt"
        path.write_text("ab")

        def grow():
            with open(path, "a") as handle:
                handle.write("b")

        # The first poll sees "ab" (no match for x{a}bb); the append lands
        # during the interval sleep and a later poll completes the match.
        timer = threading.Timer(0.15, grow)
        timer.start()
        try:
            assert main(
                ["tail", "x{a}bb", "--file", str(path),
                 "--max-polls", "8", "--interval", "0.1"]
            ) == 0
        finally:
            timer.cancel()
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert "1" in out[0]

    def test_tail_missing_file_reports_an_error(self, tmp_path, capsys):
        assert main(
            ["tail", "x{a}", "--file", str(tmp_path / "missing.log"),
             "--max-polls", "1"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_tail_from_end_skips_existing_matches(self, tmp_path, capsys):
        path = tmp_path / "log.txt"
        path.write_text("ab")
        assert main(
            ["tail", "x{a}b", "--file", str(path),
             "--max-polls", "2", "--interval", "0", "--from-end"]
        ) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_tail_deleted_mid_run_exits_cleanly(self, tmp_path, capsys):
        import threading

        path = tmp_path / "log.txt"
        path.write_text("ab")
        timer = threading.Timer(0.15, path.unlink)
        timer.start()
        try:
            # Poll 1 sees the file; the deletion lands during the sleep;
            # the remaining polls find it missing and --max-polls expires.
            assert main(
                ["tail", "x{a}b", "--file", str(path),
                 "--max-polls", "4", "--interval", "0.1"]
            ) == 2
        finally:
            timer.cancel()
        err = capsys.readouterr().err
        assert "error:" in err and "missing" in err
        assert "Traceback" not in err

    def test_tail_survives_rotation_to_shorter_file(self, tmp_path, capsys):
        import threading

        path = tmp_path / "log.txt"
        path.write_text("abab")

        def rotate():
            path.write_text("ab")  # truncate-in-place to shorter content

        timer = threading.Timer(0.15, rotate)
        timer.start()
        try:
            assert main(
                ["tail", "[ab]*x{a}b[ab]*", "--file", str(path),
                 "--max-polls", "4", "--interval", "0.1"]
            ) == 0
        finally:
            timer.cancel()
        out = capsys.readouterr().out.strip().splitlines()
        # 2 matches from the original content, then the session restarts
        # on the shorter file and re-emits its single match.
        assert len(out) == 3


class TestGuardCli:
    def test_extract_partial_budget_truncates_with_note(self, capsys):
        assert main(
            ["extract", "[ab]*x{[ab]+}[ab]*", "--text", "abab",
             "--budget", "mappings=1", "--on-budget", "partial"]
        ) == 0
        captured = capsys.readouterr()
        assert "1 mapping(s)" in captured.out
        assert "truncated" in captured.err

    def test_extract_budget_error_mode_exits_2(self, capsys):
        assert main(
            ["extract", "[ab]*x{[ab]+}[ab]*", "--text", "abab",
             "--budget", "mappings=1"]
        ) == 2
        assert "budget" in capsys.readouterr().err

    def test_extract_bad_budget_spec_is_a_clean_error(self, capsys):
        assert main(
            ["extract", "x{a}", "--text", "a", "--budget", "rows=10"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_extract_generous_deadline_is_a_no_op(self, capsys):
        assert main(
            ["extract", "x{a}b", "--text", "ab", "--deadline", "60"]
        ) == 0
        assert "1 mapping(s)" in capsys.readouterr().out

    def test_batch_partial_budget_notes_truncation(self, tmp_path, capsys):
        docs = tmp_path / "docs.txt"
        docs.write_text("abab\nabab\n")
        assert main(
            ["batch", "[ab]*x{[ab]+}[ab]*", "--file", str(docs),
             "--budget", "mappings=12", "--on-budget", "partial"]
        ) == 0
        captured = capsys.readouterr()
        assert "truncated" in captured.err
        assert "2 document(s)" in captured.out


class TestCorpusCli:
    @pytest.fixture
    def store_path(self, tmp_path, capsys):
        docs = tmp_path / "docs.txt"
        docs.write_text("abc\naabb\ncc\nb\nzebra\nccc\nabc\n")
        path = tmp_path / "corpus.sqlite"
        assert main(
            ["corpus", "ingest", "--store", str(path), "--file", str(docs)]
        ) == 0
        out = capsys.readouterr().out
        assert "7 line(s) → 6 new document(s), 1 deduplicated" in out
        return path

    def test_stats(self, store_path, capsys):
        assert main(["corpus", "stats", "--store", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "documents         6" in out

    def test_stats_json(self, store_path, capsys):
        assert main(
            ["corpus", "stats", "--store", str(store_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["documents"] == 6
        assert payload["schema_version"] == 1

    def test_query_with_explain(self, store_path, capsys):
        assert main(
            [
                "corpus", "query", "(a|b)*x{c+}(a|b)*",
                "--store", str(store_path), "--explain",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "index plan over 6 document(s):" in out
        assert "posting-seed" in out
        assert "3 matching" in out

    def test_query_json_lines(self, store_path, capsys):
        assert main(
            [
                "corpus", "query", "(a|b)*x{c+}(a|b)*",
                "--store", str(store_path), "--json",
            ]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        payloads = [json.loads(line) for line in lines]
        assert len(payloads) == 3
        assert all("doc_id" in p and "relation" in p for p in payloads)

    def test_rebuild_verify(self, store_path, capsys):
        assert main(
            ["corpus", "rebuild", "--store", str(store_path), "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "rebuilt 6 document(s)" in out
        assert "0 issue(s) repaired (verified)" in out
