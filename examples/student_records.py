"""The paper's running example end-to-end (Figures 1–2, Examples 2.1–2.4,
5.1, 5.4).

Run:  python examples/student_records.py
"""

import random

from repro import compile_spanner
from repro.algebra import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    Project,
    RAQuery,
    SentimentSpanner,
    adhoc_difference,
)
from repro.core import Document
from repro.va import evaluate_va, regex_to_va, trim
from repro.workloads import (
    STUDENTS_DOCUMENT,
    alpha_info,
    alpha_recommendation,
    alpha_student_mail,
    alpha_student_phone,
    alpha_uk_mail,
    generate_students,
)


def example_21_pstudinfo() -> None:
    """Example 2.1/2.2: the schemaless extraction from Figure 1."""
    print("== Example 2.1: ⟦αinfo⟧(dStudents) ==")
    spanner = compile_spanner(alpha_info())
    print(spanner.evaluate(STUDENTS_DOCUMENT).to_table(STUDENTS_DOCUMENT))
    print()


def example_24_difference() -> None:
    """Example 2.4: filter out UK students with the difference operator."""
    print("== Example 2.4: ⟦αinfo \\ αUKm⟧(dStudents) ==")
    a_info = trim(regex_to_va(alpha_info()))
    a_uk = trim(regex_to_va(alpha_uk_mail()))
    compiled = adhoc_difference(a_info, a_uk, STUDENTS_DOCUMENT)
    result = evaluate_va(compiled, STUDENTS_DOCUMENT)
    print(result.to_table(STUDENTS_DOCUMENT))
    print()


def figure_2_query(doc: Document) -> None:
    """Example 5.1 / Figure 2: students with mail & phone but no
    recommendation — a full RA tree evaluated by the planner."""
    print("== Figure 2: π_xstdnt((αsm ⋈ αsp) \\ αnr) ==")
    tree = Project(Difference(Join(Leaf("sm"), Leaf("sp")), Leaf("nr")), "keep")
    inst = Instantiation(
        spanners={
            "sm": alpha_student_mail(),
            "sp": alpha_student_phone(),
            "nr": alpha_recommendation(),
        },
        projections={"keep": frozenset({"xstdnt"})},
    )
    query = RAQuery(tree, inst, PlannerConfig(max_shared=2))
    for mapping in query.enumerate(doc):
        print("  student:", doc.substring(mapping["xstdnt"]))
    print()


def example_54_blackbox(doc: Document) -> None:
    """Example 5.4: swap αnr for an opaque sentiment module (PosRec)."""
    print("== Example 5.4: black-box PosRec inside the RA tree ==")
    tree = Project(Difference(Join(Leaf("sm"), Leaf("sp")), Leaf("posrec")), "keep")
    inst = Instantiation(
        spanners={
            "sm": alpha_student_mail(),
            "sp": alpha_student_phone(),
            "posrec": SentimentSpanner(
                "xstdnt", "xposrec", lexicon={"good", "great", "excellent"}
            ),
        },
        projections={"keep": frozenset({"xstdnt"})},
    )
    query = RAQuery(tree, inst, PlannerConfig(max_shared=2))
    for mapping in query.enumerate(doc):
        print("  student without positive recommendation:", doc.substring(mapping["xstdnt"]))
    print()


def main() -> None:
    example_21_pstudinfo()
    example_24_difference()

    extended = Document(
        "Pyotr Luzhin 6225545 luzi@edu.uk\n"
        "Zosimov 6222345 mov@edu.ru rec.good work\n"
        "Sofya Marmeladova 6200001 sm@edu.ru rec.weak attendance\n"
    )
    figure_2_query(extended)
    example_54_blackbox(extended)

    # A larger synthetic corpus in the same format.
    corpus = generate_students(50, random.Random(0), with_recommendation=0.3)
    print(f"== synthetic corpus ({len(corpus)} chars, 50 students) ==")
    info = compile_spanner(alpha_info())
    print(f"  αinfo extracts {len(info.evaluate(corpus))} records")


if __name__ == "__main__":
    main()
