"""The paper's running example end-to-end (Figures 1–2, Examples 2.1–2.4,
5.1, 5.4).

Run:  python examples/student_records.py
"""

import random

from repro import Engine, compile_spanner
from repro.algebra import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    Project,
    RAQuery,
    SentimentSpanner,
)
from repro.core import Document
from repro.workloads import (
    STUDENTS_DOCUMENT,
    alpha_info,
    alpha_recommendation,
    alpha_student_mail,
    alpha_student_phone,
    alpha_uk_mail,
    generate_students,
)


def example_21_pstudinfo() -> None:
    """Example 2.1/2.2: the schemaless extraction from Figure 1."""
    print("== Example 2.1: ⟦αinfo⟧(dStudents) ==")
    spanner = compile_spanner(alpha_info())
    print(spanner.evaluate(STUDENTS_DOCUMENT).to_table(STUDENTS_DOCUMENT))
    print()


def example_24_difference(engine: Engine) -> None:
    """Example 2.4: filter out UK students with the difference operator —
    an RA query evaluated through the engine (the optimizer picks the
    difference compilation)."""
    print("== Example 2.4: ⟦αinfo \\ αUKm⟧(dStudents) ==")
    query = RAQuery(
        Difference(Leaf("info"), Leaf("uk")),
        Instantiation(spanners={"info": alpha_info(), "uk": alpha_uk_mail()}),
        engine=engine,
    )
    print(query.evaluate(STUDENTS_DOCUMENT).to_table(STUDENTS_DOCUMENT))
    print()


def figure_2_query(doc: Document, engine: Engine) -> None:
    """Example 5.1 / Figure 2: students with mail & phone but no
    recommendation — a full RA tree evaluated by the planner."""
    print("== Figure 2: π_xstdnt((αsm ⋈ αsp) \\ αnr) ==")
    tree = Project(Difference(Join(Leaf("sm"), Leaf("sp")), Leaf("nr")), "keep")
    inst = Instantiation(
        spanners={
            "sm": alpha_student_mail(),
            "sp": alpha_student_phone(),
            "nr": alpha_recommendation(),
        },
        projections={"keep": frozenset({"xstdnt"})},
    )
    query = RAQuery(tree, inst, PlannerConfig(max_shared=2), engine=engine)
    for mapping in query.enumerate(doc):
        print("  student:", doc.substring(mapping["xstdnt"]))
    print()


def example_54_blackbox(doc: Document, engine: Engine) -> None:
    """Example 5.4: swap αnr for an opaque sentiment module (PosRec)."""
    print("== Example 5.4: black-box PosRec inside the RA tree ==")
    tree = Project(Difference(Join(Leaf("sm"), Leaf("sp")), Leaf("posrec")), "keep")
    inst = Instantiation(
        spanners={
            "sm": alpha_student_mail(),
            "sp": alpha_student_phone(),
            "posrec": SentimentSpanner(
                "xstdnt", "xposrec", lexicon={"good", "great", "excellent"}
            ),
        },
        projections={"keep": frozenset({"xstdnt"})},
    )
    query = RAQuery(tree, inst, PlannerConfig(max_shared=2), engine=engine)
    for mapping in query.enumerate(doc):
        print("  student without positive recommendation:", doc.substring(mapping["xstdnt"]))
    print()


def main() -> None:
    engine = Engine()
    example_21_pstudinfo()
    example_24_difference(engine)

    extended = Document(
        "Pyotr Luzhin 6225545 luzi@edu.uk\n"
        "Zosimov 6222345 mov@edu.ru rec.good work\n"
        "Sofya Marmeladova 6200001 sm@edu.ru rec.weak attendance\n"
    )
    figure_2_query(extended, engine)
    example_54_blackbox(extended, engine)

    # A larger synthetic corpus in the same format, batch-evaluated so the
    # static compilation is shared across every document.
    documents = [
        generate_students(10, random.Random(seed), with_recommendation=0.3)
        for seed in range(5)
    ]
    info = RAQuery(
        Leaf("info"), Instantiation(spanners={"info": alpha_info()}), engine=engine
    )
    relations = info.evaluate_many(documents)
    total = sum(len(relation) for relation in relations)
    print(f"== synthetic corpus ({len(documents)} documents, 10 students each) ==")
    print(f"  αinfo extracts {total} records")
    print(f"  engine: {engine.stats.plan_hits} plan hit(s), "
          f"{engine.stats.cse_hits} CSE hit(s)")


if __name__ == "__main__":
    main()
