"""The hardness reductions as a (very inefficient) SAT solver.

Theorems 3.1 and 4.1 encode 3SAT into spanner-algebra nonemptiness; running
the encodings backwards turns the spanner evaluator into a SAT solver —
and makes the exponential cost of unrestricted joins/differences tangible.

Run:  python examples/sat_reduction_demo.py
"""

import time

from repro import Engine
from repro.algebra import semantic_difference, semantic_join
from repro.reductions import (
    PAPER_PHI,
    build_difference_instance,
    build_join_instance,
    dpll_satisfiable,
)
from repro.va import regex_to_va, trim

#: One engine for the whole demo — the compiled formula automata are
#: prepared once and cached by structural fingerprint.
ENGINE = Engine()


def solve_by_join(cnf) -> dict | None:
    """Decide satisfiability through the Theorem-3.1 join encoding."""
    instance = build_join_instance(cnf)
    r1 = ENGINE.evaluate(trim(regex_to_va(instance.gamma1)), instance.document)
    r2 = ENGINE.evaluate(trim(regex_to_va(instance.gamma2)), instance.document)
    joined = semantic_join(r1, r2)
    for mapping in joined:
        return instance.decode(mapping)
    return None


def solve_by_difference(cnf) -> dict | None:
    """Decide satisfiability through the Theorem-4.1 difference encoding."""
    instance = build_difference_instance(cnf)
    r1 = ENGINE.evaluate(trim(regex_to_va(instance.gamma1)), instance.document)
    r2 = ENGINE.evaluate(trim(regex_to_va(instance.gamma2)), instance.document)
    for mapping in semantic_difference(r1, r2):
        return instance.decode(mapping)
    return None


def main() -> None:
    cnf = PAPER_PHI
    print("φ =", cnf)

    print("\n-- Theorem 3.1: satisfiability as join nonemptiness --")
    start = time.perf_counter()
    model = solve_by_join(cnf)
    elapsed = time.perf_counter() - start
    print(f"  model via join:        {model}  ({elapsed*1e3:.1f} ms)")

    print("\n-- Theorem 4.1: satisfiability as difference nonemptiness --")
    start = time.perf_counter()
    model = solve_by_difference(cnf)
    elapsed = time.perf_counter() - start
    print(f"  model via difference:  {model}  ({elapsed*1e3:.1f} ms)")

    start = time.perf_counter()
    model = dpll_satisfiable(cnf)
    elapsed = time.perf_counter() - start
    print(f"  model via DPLL:        {model}  ({elapsed*1e3:.1f} ms)")

    print(
        "\nBoth spanner routes materialise relations exponential in the"
        "\nnumber of SAT variables — the benches (E2/E6) trace that curve;"
        "\nthe paper's restrictions (bounded shared variables, disjunctive"
        "\nfunctional, synchronized) are exactly what rules these"
        "\nencodings out while keeping practical queries fast."
    )


if __name__ == "__main__":
    main()
