"""Black-box spanners beyond regular power (Corollary 5.3): string
equality, dictionary lookup, and an opaque sentiment module inside one
query.

Run:  python examples/blackbox_sentiment.py
"""

from repro import Engine, compile_spanner
from repro.algebra import (
    DictionarySpanner,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    RAQuery,
    SentimentSpanner,
    StringEqualitySpanner,
)
from repro.core import Document


def string_equality_demo(engine: Engine) -> None:
    """String equality is NOT expressible in RA over regular spanners
    [8, 13] — but it is tractable and degree-2, so the ad-hoc planner can
    still join with it (Corollary 5.3)."""
    doc = Document("abcabd")
    print("== repeated trigrams via the string-equality black box ==")
    tree = Join(Join(Leaf("eq"), Leaf("first")), Leaf("second"))
    inst = Instantiation(
        spanners={
            "eq": StringEqualitySpanner("x", "y"),
            # anchor x and y to length-3 spans with y strictly after x
            "first": compile_spanner("[a-d]*x{[a-d][a-d]}[a-d]*"),
            "second": compile_spanner("[a-d][a-d]*y{[a-d][a-d]}[a-d]*|[a-d]*y{[a-d][a-d]}"),
        }
    )
    query = RAQuery(tree, inst, PlannerConfig(max_shared=2), engine=engine)
    seen = set()
    for mapping in query.enumerate(doc):
        x, y = mapping["x"], mapping["y"]
        if x.begin < y.begin:
            key = (doc.substring(x), x.begin, y.begin)
            if key not in seen:
                seen.add(key)
                print(f"  {doc.substring(x)!r} repeats at positions {x.begin} and {y.begin}")


def review_pipeline(engine: Engine) -> None:
    """Example-5.4 style: opaque sentiment + dictionary inside the tree."""
    doc = Document(
        "Rodion great insight but chaotic\n"
        "Pyotr solid work overall\n"
        "Sofya excellent thesis on spanners\n"
    )
    print("\n== reviewers praised by the sentiment module ==")
    sentiment = SentimentSpanner("who", "evidence", lexicon={"great", "excellent"})
    for mapping in sentiment.enumerate(doc):
        print(
            f"  {doc.substring(mapping['who'])}:"
            f" {doc.substring(mapping['evidence'])!r}"
        )

    print("\n== joined with a topic dictionary (two black boxes) ==")
    tree = Join(Leaf("sent"), Leaf("topics"))
    inst = Instantiation(
        spanners={
            "sent": sentiment,
            "topics": DictionarySpanner("topic", {"thesis", "insight", "work"}),
        }
    )
    query = RAQuery(tree, inst, PlannerConfig(max_shared=0), engine=engine)
    rows = set()
    for mapping in query.enumerate(doc):
        who = doc.substring(mapping["who"])
        topic = doc.substring(mapping["topic"])
        # keep topic mentions on the same line as the praised reviewer
        if mapping["who"].end <= mapping["topic"].begin:
            rows.add((who, topic))
    for who, topic in sorted(rows):
        print(f"  {who} ↔ {topic}")


if __name__ == "__main__":
    shared_engine = Engine()
    string_equality_demo(shared_engine)
    review_pipeline(shared_engine)
