"""System-log analytics (the §1 motivation): realistic extractors composed
with the algebra, on a generated log.

Pipeline: extract timestamped log lines, join ERROR lines with lines whose
message mentions a known subsystem (dictionary black box), and subtract
lines already acknowledged.

Run:  python examples/log_pipeline.py
"""

import random

from repro import Engine, compile_spanner
from repro.algebra import (
    Difference,
    DictionarySpanner,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    RAQuery,
)
from repro.core import Document
from repro.regex import capture, chars, concat, lit, parse, star, sym, union
from repro.workloads.regexes import TEXT_ALPHABET, log_line_formula

_SUBSYSTEMS = ("disk", "net", "auth", "db")
_MESSAGES = (
    "timeout talking to {s}",
    "{s} degraded",
    "{s} recovered",
    "restarted {s} worker",
)


def generate_log(n_lines: int, rng: random.Random) -> Document:
    lines = []
    for _ in range(n_lines):
        ts = f"{rng.randint(0,23):02d}:{rng.randint(0,59):02d}:{rng.randint(0,59):02d}"
        level = rng.choice(("INFO", "WARN", "ERROR", "ERROR"))
        message = rng.choice(_MESSAGES).format(s=rng.choice(_SUBSYSTEMS))
        ack = " ack" if rng.random() < 0.3 else ""
        lines.append(f"{ts} {level} {message}{ack}")
    return Document("\n".join(lines) + "\n")


def anchored(body) -> "object":
    """Anchor an extractor at a line of the log."""
    skip = star(chars(TEXT_ALPHABET))
    line_start = union(parse("ε"), concat(skip, sym("\n")))
    return concat(line_start, body, sym("\n"), skip)


def main() -> None:
    rng = random.Random(2026)
    log = generate_log(40, rng)

    # Atomic extractors -----------------------------------------------------
    error_line = anchored(
        concat(
            capture("ts", parse("[0-9][0-9]:[0-9][0-9]:[0-9][0-9]")),
            lit(" ERROR "),
            capture("msg", star(chars(TEXT_ALPHABET - {"\n"}))),
        )
    )
    acked_line = anchored(
        concat(
            capture("ts", parse("[0-9][0-9]:[0-9][0-9]:[0-9][0-9]")),
            star(chars(TEXT_ALPHABET - {"\n"})),
            lit(" ack"),
        )
    )
    subsystems = DictionarySpanner("sub", _SUBSYSTEMS)

    # The query: unacknowledged ERROR lines, tagged with the subsystem
    # mentioned inside their message span.  The subsystem join is a
    # black-box leaf (Corollary 5.3).
    engine = Engine()
    tree = Difference(Leaf("errors"), Leaf("acked"))
    inst = Instantiation(spanners={"errors": error_line, "acked": acked_line})
    query = RAQuery(tree, inst, PlannerConfig(max_shared=1), engine=engine)

    print("== unacknowledged ERROR lines ==")
    pending = query.evaluate(log)
    for mapping in pending:
        print(" ", log.substring(mapping["ts"]), log.substring(mapping["msg"]))

    print("\n== tagged with mentioned subsystem (black-box dictionary join) ==")
    sub_rel = subsystems.evaluate(log)
    for mapping in pending:
        msg_span = mapping["msg"]
        tags = {
            log.substring(s["sub"])
            for s in sub_rel
            if msg_span.contains(s["sub"])
        }
        print(" ", log.substring(mapping["ts"]), "→", ", ".join(sorted(tags)) or "?")

    # Single-extractor sanity stat using the library formula, served by
    # the same engine (a bare VA is a query too).
    all_lines = compile_spanner(anchored(log_line_formula()))
    print(f"\ntotal structured lines: {len(engine.evaluate(all_lines.va, log))}")


if __name__ == "__main__":
    main()
