"""Quickstart: compile regex formulas, combine them with the algebra, and
evaluate everything through the execution engine.

Run:  python examples/quickstart.py
"""

from repro import (
    Difference,
    Engine,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    RAQuery,
    as_document,
    parse,
)


def main() -> None:
    document = as_document(
        "Ada Lovelace ada@lab.org\nCharles Babbage\nAlan Turing alan@cs.uk\n"
    )

    # One engine serves every query below: compiled plans, static prefixes
    # and prepared automata are cached and shared across queries.
    engine = Engine()

    # 1. A schemaless extractor: the first name is optional, the email too.
    #    Sequential (every variable bound at most once per match), so
    #    enumeration has polynomial delay (Theorem 2.5).
    line = "([A-Za-z@. \\n]*\\n|ε)"  # anchor at any line start
    person = parse(
        line
        + "(first{[A-Z][a-z]+} |ε)last{[A-Z][a-z]+}"
        + "( mail{[a-z]+@[a-z.]+}|ε)"
        + "\\n[A-Za-z@. \\n]*"
    )
    people = RAQuery(
        Leaf("person"), Instantiation(spanners={"person": person}), engine=engine
    )
    print("== extracted people (schemaless: domains differ) ==")
    print(people.evaluate(document).to_table(document))

    # 2. Algebra: join against an extractor of .uk emails, compiled into
    #    one automaton (FPT in the shared variables, Lemma 3.2).  Note the
    #    schemaless semantics at work: a person *without* a mail binding is
    #    compatible with any uk-mail mapping (their domains are disjoint),
    #    so Babbage picks up Turing's email — exactly the §2.4
    #    compatibility rule.
    uk_mail = parse("[A-Za-z@. \\n]* mail{[a-z]+@[a-z.]*uk}\\n[A-Za-z@. \\n]*")
    inst = Instantiation(spanners={"person": person, "uk": uk_mail})
    joined = RAQuery(
        Join(Leaf("person"), Leaf("uk")), inst, PlannerConfig(max_shared=2), engine=engine
    )
    print("== person ⋈ uk-mail (schemaless compatibility!) ==")
    for mapping in joined.enumerate(document):
        print(" ", {v: document.substring(s) for v, s in mapping.items()})

    # 3. Difference: compiled per document (Section 4) — the optimizer
    #    routes it through the synchronized compilation (Theorem 4.8) when
    #    the subtrahend allows; `explain` shows what the plan became.
    without_uk = RAQuery(Difference(Leaf("person"), Leaf("uk")), inst, engine=engine)
    print("\n== people without a .uk email (ad-hoc difference) ==")
    for mapping in without_uk.enumerate(document):
        print(" ", {v: document.substring(s) for v, s in mapping.items()})
    print("\n== the compiled plan ==")
    print(without_uk.explain())

    # 4. Batch evaluation: the static prefix compiles once for the whole
    #    corpus; per-document work is only the ad-hoc difference.
    corpus = [document, "Grace Hopper grace@navy.mil\n", "Alan Turing alan@cs.uk\n"]
    relations = without_uk.evaluate_many(corpus)
    print("\n== batch over the corpus ==")
    for index, relation in enumerate(relations):
        print(f"  doc {index}: {len(relation)} mapping(s)")
    print("\n== engine statistics ==")
    print(engine.stats.summary())


if __name__ == "__main__":
    main()
