"""Quickstart: compile a regex formula, extract, combine with the algebra.

Run:  python examples/quickstart.py
"""

from repro import compile_spanner
from repro.algebra import adhoc_difference, fpt_join
from repro.va import evaluate_va


def main() -> None:
    document = "Ada Lovelace ada@lab.org\nCharles Babbage\nAlan Turing alan@cs.uk\n"

    # 1. A schemaless extractor: the first name is optional, the email too.
    #    Sequential (every variable bound at most once per match), so
    #    enumeration has polynomial delay (Theorem 2.5).
    line = "([A-Za-z@. \\n]*\\n|ε)"  # anchor at any line start
    person = compile_spanner(
        line
        + "(first{[A-Z][a-z]+} |ε)last{[A-Z][a-z]+}"
        + "( mail{[a-z]+@[a-z.]+}|ε)"
        + "\\n[A-Za-z@. \\n]*"
    )
    print("== extracted people (schemaless: domains differ) ==")
    relation = person.evaluate(document)
    print(relation.to_table(person_doc := __import__("repro").as_document(document)))

    # 2. Algebra: join against an extractor of .uk emails, entirely
    #    compiled into one automaton (FPT in the shared variables,
    #    Lemma 3.2).  Note the schemaless semantics at work: a person
    #    *without* a mail binding is compatible with any uk-mail mapping
    #    (their domains are disjoint), so Babbage picks up Turing's email —
    #    exactly the §2.4 compatibility rule.
    uk_mail = compile_spanner(
        "[A-Za-z@. \\n]* mail{[a-z]+@[a-z.]*uk}\\n[A-Za-z@. \\n]*"
    )
    joined = fpt_join(person.va, uk_mail.va)
    print("\n== person ⋈ uk-mail (schemaless compatibility!) ==")
    for mapping in evaluate_va(joined, document):
        print(" ", {v: person_doc.substring(s) for v, s in mapping.items()})

    # 3. Difference: ad-hoc compilation against this document (Lemma 4.2).
    without_uk = adhoc_difference(person.va, uk_mail.va, document)
    print("\n== people without a .uk email (ad-hoc difference) ==")
    for mapping in evaluate_va(without_uk, document):
        print(" ", {v: person_doc.substring(s) for v, s in mapping.items()})


if __name__ == "__main__":
    main()
