"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so the
PEP-517 editable route (which builds a wheel) is unavailable offline.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and
plain ``pip install -e .`` on modern toolchains via pyproject.toml) work
everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
